// Reproduces Figure 11(a-d): System C on one server (8 hyper-threads in
// the paper) versus Spark and Hive on a 16-node cluster, on large
// synthetic data sets (20-100 paper-GB; similarity on 6k-32k households,
// scaled).
//
// Expected shape (paper): up to ~40 GB System C keeps up with the
// cluster engines despite running on one machine; Spark and Hive carry
// fixed job overheads that dominate at small sizes and amortize at
// scale. System C similarity stays strong.
//
// System C times are real host seconds; Spark/Hive times are simulated
// cluster seconds (see DESIGN.md "cluster realism" note).
#include <cstdio>

#include "bench_common.h"
#include "engines/engine_factory.h"
#include "engines/hive_engine.h"
#include "engines/spark_engine.h"
#include "engines/systemc_engine.h"

namespace {

using namespace smartmeter;         // NOLINT
using namespace smartmeter::bench;  // NOLINT

int Run(BenchContext& ctx) {
  PrintHeader(
      "Figure 11: System C (1 server, real) vs Spark & Hive (16 nodes, "
      "simulated)",
      StringPrintf("scale %.0f; paper sweeps 20-100 GB; data format 2 "
                   "(best for Spark/Hive)",
                   ctx.scale_divisor()));

  cluster::ClusterConfig cluster;
  cluster.num_nodes = static_cast<int>(ctx.flags().GetInt("nodes", 16));

  const std::vector<double> sizes = {20.0, 40.0, 60.0, 80.0, 100.0};
  for (core::TaskType task :
       {core::TaskType::kThreeLine, core::TaskType::kPar,
        core::TaskType::kHistogram}) {
    std::printf("\n-- Figure 11 (%s) --\n",
                std::string(core::TaskName(task)).c_str());
    PrintRow({"paper GB", "households", "system-c (s)", "spark (s, sim)",
              "hive (s, sim)"});
    PrintDivider(5);
    for (double paper_gb : sizes) {
      const int households = ctx.HouseholdsForPaperGb(paper_gb);
      auto single = ctx.SingleCsv(households);
      auto lines = ctx.HouseholdLines(households);
      if (!single.ok() || !lines.ok()) return 1;

      engines::TaskOptions request = engines::TaskOptions::Default(task);

      engines::SystemCEngine systemc(ctx.SpoolDir("fig11"));
      systemc.SetThreads(8);  // The paper's max hyper-thread level.
      if (!systemc.Attach(*single).ok()) return 1;
      auto c_time = systemc.RunTask(request, nullptr);

      engines::SparkEngine::Options spark_options;
      spark_options.cluster = cluster;
      engines::SparkEngine spark(spark_options);
      if (!spark.Attach(*lines).ok()) return 1;
      auto s_time = spark.RunTask(request, nullptr);

      engines::HiveEngine::Options hive_options;
      hive_options.cluster = cluster;
      engines::HiveEngine hive(hive_options);
      if (!hive.Attach(*lines).ok()) return 1;
      auto h_time = hive.RunTask(request, nullptr);

      if (!c_time.ok() || !s_time.ok() || !h_time.ok()) {
        std::fprintf(stderr, "task failed\n");
        return 1;
      }
      PrintRow({Cell(paper_gb), CellInt(households), Cell(c_time->seconds),
                Cell(s_time->seconds), Cell(h_time->seconds)});
    }
  }

  // Similarity panel: the paper sweeps 6,000 - 32,000 households.
  std::printf("\n-- Figure 11 (similarity) --\n");
  PrintRow({"paper households", "scaled households", "system-c (s)",
            "spark (s, sim)", "hive (s, sim)"});
  PrintDivider(5);
  for (int paper_households : {6000, 16000, 32000}) {
    const int households = std::max(
        8, static_cast<int>(paper_households / ctx.scale_divisor()));
    auto single = ctx.SingleCsv(households);
    auto lines = ctx.HouseholdLines(households);
    if (!single.ok() || !lines.ok()) return 1;
    engines::TaskOptions request = engines::TaskOptions::Default(core::TaskType::kSimilarity);

    engines::SystemCEngine systemc(ctx.SpoolDir("fig11"));
    systemc.SetThreads(8);
    if (!systemc.Attach(*single).ok()) return 1;
    auto c_time = systemc.RunTask(request, nullptr);

    engines::SparkEngine::Options spark_options;
    spark_options.cluster = cluster;
    engines::SparkEngine spark(spark_options);
    if (!spark.Attach(*lines).ok()) return 1;
    auto s_time = spark.RunTask(request, nullptr);

    engines::HiveEngine::Options hive_options;
    hive_options.cluster = cluster;
    engines::HiveEngine hive(hive_options);
    if (!hive.Attach(*lines).ok()) return 1;
    auto h_time = hive.RunTask(request, nullptr);
    if (!c_time.ok() || !s_time.ok() || !h_time.ok()) return 1;
    PrintRow({CellInt(paper_households), CellInt(households),
              Cell(c_time->seconds), Cell(s_time->seconds),
              Cell(h_time->seconds)});
  }
  std::printf(
      "\nShape to check: at small sizes system-c rivals or beats the "
      "cluster (fixed job overheads);\nhive > spark for similarity "
      "(self-join vs broadcast join).\n");

  // Fault panel (not in the paper): the same Spark job on a healthy
  // cluster, under injected failures + stragglers, and with speculative
  // execution cleaning up the stragglers. Flags: --fault_prob,
  // --straggler_prob, --fault_seed.
  const double fault_prob = ctx.flags().GetDouble("fault_prob", 0.1);
  const double straggler_prob = ctx.flags().GetDouble("straggler_prob", 0.2);
  const uint64_t fault_seed =
      static_cast<uint64_t>(ctx.flags().GetInt("fault_seed", 42));
  std::printf(
      "\n-- Fault injection (3line, 40 paper-GB, fail=%.2f straggle=%.2f "
      "seed=%llu) --\n",
      fault_prob, straggler_prob,
      static_cast<unsigned long long>(fault_seed));
  PrintRow({"scenario", "spark (s, sim)", "retries", "stragglers",
            "spec launched/won"});
  PrintDivider(5);
  const int households = ctx.HouseholdsForPaperGb(40.0);
  auto lines = ctx.HouseholdLines(households);
  if (!lines.ok()) return 1;
  const engines::TaskOptions request =
      engines::TaskOptions::Default(core::TaskType::kThreeLine);
  struct FaultScenario {
    const char* name;
    bool faults;
    bool speculation;
  };
  for (const FaultScenario& scenario :
       {FaultScenario{"healthy", false, false},
        FaultScenario{"faulty", true, false},
        FaultScenario{"faulty+speculation", true, true}}) {
    engines::SparkEngine::Options spark_options;
    spark_options.cluster = cluster;
    if (scenario.faults) {
      spark_options.cluster.faults.seed = fault_seed;
      spark_options.cluster.faults.task_failure_probability = fault_prob;
      spark_options.cluster.faults.straggler_probability = straggler_prob;
      spark_options.cluster.faults.speculative_execution =
          scenario.speculation;
    }
    engines::SparkEngine spark(spark_options);
    if (!spark.Attach(*lines).ok()) return 1;
    auto metrics = spark.RunTask(request, nullptr);
    if (!metrics.ok()) {
      // A hostile enough draw can legitimately abort the job; report it
      // as a row rather than failing the whole figure.
      PrintRow({scenario.name, metrics.status().ToString(), "-", "-", "-"});
      continue;
    }
    PrintRow({scenario.name, Cell(metrics->seconds),
              CellInt(metrics->faults.retries),
              CellInt(metrics->faults.stragglers),
              StringPrintf(
                  "%lld/%lld",
                  static_cast<long long>(metrics->faults.speculative_launched),
                  static_cast<long long>(metrics->faults.speculative_wins))});
  }
  std::printf(
      "\nShape to check: faults raise the simulated makespan; speculation "
      "claws back straggler time\n(wins > 0) without changing results.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx(argc, argv, /*default_scale=*/400.0);
  return Run(ctx);
}
