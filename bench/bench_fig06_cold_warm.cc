// Reproduces Figure 6: cold-start vs warm-start running time of the
// 3-line algorithm on Matlab, MADLib and System C, with the warm time
// broken into T1 (per-temperature quantiles), T2 (regression lines) and
// T3 (continuity adjustment).
//
// Expected shape (paper): cold > warm everywhere; Matlab and MADLib pay
// the most to bring data into memory, System C the least (mmap); within
// the algorithm T2 (regression) dominates.
#include <cstdio>

#include "bench_common.h"
#include "engines/engine_factory.h"

namespace {

using namespace smartmeter;         // NOLINT
using namespace smartmeter::bench;  // NOLINT

int Run(BenchContext& ctx) {
  const double paper_gb = ctx.flags().GetDouble("paper-gb", 5.0);
  const int households = ctx.HouseholdsForPaperGb(paper_gb);
  PrintHeader(
      "Figure 6: cold vs warm start, 3-line algorithm (T1/T2/T3 split)",
      StringPrintf("%d households (~%.1f paper-GB); paper used 10 GB",
                   households, ctx.PaperGbForHouseholds(households)));
  PrintRow({"platform", "cold (s)", "warm (s)", "T1 quantiles (s)",
            "T2 regression (s)", "T3 adjust (s)", "load = cold-warm (s)"});
  PrintDivider(7);

  for (engines::EngineKind kind :
       {engines::EngineKind::kMatlab, engines::EngineKind::kMadlib,
        engines::EngineKind::kSystemC}) {
    engines::EngineFactoryOptions factory;
    factory.spool_dir = ctx.SpoolDir("fig06");
    auto engine = engines::MakeEngine(kind, factory);
    // Matlab prefers the partitioned layout (Figure 5); the DBMS-style
    // engines load the single CSV.
    auto source = (kind == engines::EngineKind::kMatlab)
                      ? ctx.PartitionedDir(households)
                      : ctx.SingleCsv(households);
    if (!source.ok()) return 1;
    if (!engine->Attach(*source).ok()) return 1;

    engines::TaskOptions request = engines::TaskOptions::Default(core::TaskType::kThreeLine);

    auto cold = engine->RunTask(request, nullptr);
    if (!cold.ok()) {
      std::fprintf(stderr, "%s\n", cold.status().ToString().c_str());
      return 1;
    }
    auto warm_load = engine->WarmUp();
    if (!warm_load.ok()) return 1;
    auto warm = engine->RunTask(request, nullptr);
    if (!warm.ok()) return 1;

    PrintRow({std::string(engines::EngineKindName(kind)),
              Cell(cold->seconds), Cell(warm->seconds),
              Cell(warm->phases.quantile_seconds),
              Cell(warm->phases.regression_seconds),
              Cell(warm->phases.adjust_seconds),
              Cell(cold->seconds - warm->seconds)});
  }
  std::printf(
      "\nShape to check: cold >= warm for all; System C's load gap is the "
      "smallest; T2 dominates T1 and T3.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx(argc, argv, /*default_scale=*/80.0);
  return Run(ctx);
}
