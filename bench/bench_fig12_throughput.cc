// Reproduces Figure 12(a,b): throughput per server -- households handled
// per second per server -- for System C (1 server) vs Spark and Hive (16
// workers), at the 100 paper-GB size and, for similarity, at the 32k
// (scaled) household point.
//
// Expected shape (paper): normalized per server, System C is competitive
// with the cluster engines on 3-line and PAR and better on histogram;
// its similarity throughput per server is also higher.
#include <cstdio>

#include "bench_common.h"
#include "engines/hive_engine.h"
#include "engines/spark_engine.h"
#include "engines/systemc_engine.h"

namespace {

using namespace smartmeter;         // NOLINT
using namespace smartmeter::bench;  // NOLINT

int Run(BenchContext& ctx) {
  cluster::ClusterConfig cluster;
  cluster.num_nodes = static_cast<int>(ctx.flags().GetInt("nodes", 16));
  const int households = ctx.HouseholdsForPaperGb(
      ctx.flags().GetDouble("paper-gb", 100.0));
  const int sim_households = std::max(
      8, static_cast<int>(32000 / ctx.scale_divisor()));

  PrintHeader(
      "Figure 12: throughput per server (households / second / server)",
      StringPrintf("%d households (~100 paper-GB), similarity at %d "
                   "(scaled 32k); Spark/Hive divided by %d workers",
                   households, sim_households, cluster.num_nodes));
  PrintRow({"task", "system-c", "spark", "hive"});
  PrintDivider(4);

  for (core::TaskType task : core::kAllTasks) {
    const int n = task == core::TaskType::kSimilarity ? sim_households
                                                      : households;
    auto single = ctx.SingleCsv(n);
    auto lines = ctx.HouseholdLines(n);
    if (!single.ok() || !lines.ok()) return 1;
    engines::TaskOptions request = engines::TaskOptions::Default(task);

    engines::SystemCEngine systemc(ctx.SpoolDir("fig12"));
    systemc.SetThreads(8);
    if (!systemc.Attach(*single).ok()) return 1;
    auto c_time = systemc.RunTask(request, nullptr);

    engines::SparkEngine::Options spark_options;
    spark_options.cluster = cluster;
    engines::SparkEngine spark(spark_options);
    if (!spark.Attach(*lines).ok()) return 1;
    auto s_time = spark.RunTask(request, nullptr);

    engines::HiveEngine::Options hive_options;
    hive_options.cluster = cluster;
    engines::HiveEngine hive(hive_options);
    if (!hive.Attach(*lines).ok()) return 1;
    auto h_time = hive.RunTask(request, nullptr);
    if (!c_time.ok() || !s_time.ok() || !h_time.ok()) return 1;

    auto throughput = [n](double seconds, int servers) {
      return seconds > 0
                 ? static_cast<double>(n) / seconds / servers
                 : 0.0;
    };
    PrintRow({std::string(core::TaskName(task)),
              Cell(throughput(c_time->seconds, 1)),
              Cell(throughput(s_time->seconds, cluster.num_nodes)),
              Cell(throughput(h_time->seconds, cluster.num_nodes))});
  }
  std::printf(
      "\nShape to check: per server, system-c stays competitive on 3line "
      "and par and clearly wins histogram and similarity.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx(argc, argv, /*default_scale=*/400.0);
  return Run(ctx);
}
