// Real-time ingest benchmark (the lambda path): sustained append rates
// through StreamProcessor -> DeltaStore while concurrent routed queries
// run over merged base+delta snapshots, versus the same queries with no
// ingest running.
//
// Three panels:
//   1. No-ingest baseline: routed single-household histogram queries
//      over the attached base, for the query-latency reference.
//   2. Ingest-rate sweep: the same query load while readings stream in
//      at 1x / 4x / 16x the base rate. Reports accepted ingest rate,
//      freshness (reading-to-queryable lag, sampled by the snapshot
//      thread) p50/p99, and query p50/p99.
//   3. Marker visibility: one marker reading appended after the sweep
//      must become visible to a routed query within the freshness
//      bound (end-to-end proof the lambda merge is live).
//
// Flags (on top of the common bench flags):
//   --households=<n>      households in the table (default 240)
//   --base-days=<n>       immutable base size in days (default 30)
//   --ingest-hours=<n>    hours streamed live per rate config (default 24)
//   --rate=<r>            base ingest rate in readings/s (default 1000;
//                         the sweep runs r, 4r, 16r)
//   --snapshot-ms=<ms>    snapshot cadence (default 25)
//   --query-threads=<n>   concurrent query clients (default 2)
//   --freshness-limit-ms=<ms>  gate bound on freshness p99 (default 1000)
//   --gate                enforce the acceptance gates (freshness p99
//                         bounded, query p99 within 20% + 20ms of the
//                         no-ingest baseline, marker visible) and exit
//                         nonzero on failure
//
// Typical invocations:
//   bench_fig21_streaming
//   bench_fig21_streaming --households=64 --base-days=10 --gate
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "engines/engine_util.h"
#include "exec/query_context.h"
#include "obs/report.h"
#include "storage/scan_scope.h"
#include "streaming/alert_log.h"
#include "streaming/detectors.h"
#include "streaming/stream_processor.h"
#include "table/columnar_batch.h"
#include "table/delta_store.h"

namespace smartmeter::bench {
namespace {

constexpr double kQueryP99RegressionFactor = 1.2;
constexpr double kQueryP99SlackSeconds = 0.020;

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t index = std::min(
      values.size() - 1,
      static_cast<size_t>(p * static_cast<double>(values.size() - 1) + 0.5));
  return values[index];
}

/// Latency percentiles of one query panel.
struct QueryPanel {
  int64_t ok = 0;
  int64_t failed = 0;
  double p50 = 0.0;
  double p99 = 0.0;
  double qps = 0.0;
};

/// Shared reader refreshed by the snapshot thread, queried by clients.
struct SharedReader {
  explicit SharedReader(table::DeltaStore* store) : reader(store) {}
  std::mutex mu;
  table::DeltaTableReader reader;
};

/// One routed single-household histogram over the current snapshot.
/// Returns latency seconds, or < 0 on failure.
double RoutedQuery(SharedReader* shared, const engines::TaskOptions& task,
                   size_t row) {
  Stopwatch watch;
  Result<table::ScopedBatch> scoped = [&] {
    std::lock_guard<std::mutex> lock(shared->mu);
    storage::ScanScope scope;
    scope.row_begin = row;
    scope.row_count = 1;
    return shared->reader.NewScopedBatch(scope);
  }();
  if (!scoped.ok()) return -1.0;
  engines::TaskResultSet results;
  auto metrics =
      engines::RunTaskOverBatch(exec::QueryContext::Background(),
                                scoped->batch, task, /*num_threads=*/1,
                                &results);
  if (!metrics.ok()) return -1.0;
  return watch.ElapsedSeconds();
}

/// Runs `threads` closed-loop query clients until `stop` flips, round-
/// robining the routed household.
QueryPanel RunQueryLoad(SharedReader* shared, const engines::TaskOptions& task,
                        size_t rows, int threads,
                        const std::atomic<bool>& stop) {
  std::mutex merge_mu;
  QueryPanel panel;
  std::vector<double> latencies;
  Stopwatch wall;
  std::vector<std::thread> clients;
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      std::vector<double> local;
      int64_t ok = 0;
      int64_t failed = 0;
      size_t q = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        const double latency = RoutedQuery(shared, task, q % rows);
        q += static_cast<size_t>(threads);
        if (latency < 0) {
          ++failed;
        } else {
          ++ok;
          local.push_back(latency);
        }
      }
      std::lock_guard<std::mutex> lock(merge_mu);
      panel.ok += ok;
      panel.failed += failed;
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : clients) t.join();
  const double wall_seconds = wall.ElapsedSeconds();
  panel.p50 = Percentile(latencies, 0.50);
  panel.p99 = Percentile(latencies, 0.99);
  panel.qps = wall_seconds > 0
                  ? static_cast<double>(panel.ok) / wall_seconds
                  : 0.0;
  return panel;
}

obs::RunRecord LambdaRecord(int query_threads, double wall_seconds,
                            const QueryPanel& panel) {
  obs::RunRecord record;
  record.engine = "lambda";
  record.task = "routed-histogram";
  record.layout = "base+delta";
  record.threads = query_threads;
  record.warm = true;
  record.task_seconds = wall_seconds;
  record.outcome = "ok";
  record.clients = query_threads;
  record.queries_ok = panel.ok;
  record.p50_seconds = panel.p50;
  record.p99_seconds = panel.p99;
  record.queries_per_second = panel.qps;
  return record;
}

int Run(BenchContext& ctx) {
  const int households =
      static_cast<int>(ctx.flags().GetInt("households", 240));
  const int base_days = static_cast<int>(ctx.flags().GetInt("base-days", 30));
  const int ingest_hours =
      static_cast<int>(ctx.flags().GetInt("ingest-hours", 24));
  const double base_rate = ctx.flags().GetDouble("rate", 1000.0);
  const double snapshot_seconds =
      ctx.flags().GetDouble("snapshot-ms", 25.0) / 1e3;
  const int query_threads =
      static_cast<int>(ctx.flags().GetInt("query-threads", 2));
  const double freshness_limit =
      ctx.flags().GetDouble("freshness-limit-ms", 1000.0) / 1e3;
  const bool gate = ctx.flags().GetBool("gate", false);
  const size_t base_hours = static_cast<size_t>(base_days) * 24;

  auto dataset = ctx.GetDataset(households);
  if (!dataset.ok()) {
    std::fprintf(stderr, "data: %s\n", dataset.status().ToString().c_str());
    return 1;
  }
  if ((*dataset)->hours() <
      base_hours + static_cast<size_t>(ingest_hours) + 1) {
    std::fprintf(stderr, "need %zu dataset hours, have %zu\n",
                 base_hours + static_cast<size_t>(ingest_hours) + 1,
                 (*dataset)->hours());
    return 1;
  }
  const MeterDataset& data = **dataset;
  const size_t rows = data.num_consumers();

  PrintHeader(
      "Real-time ingest: delta appends vs concurrent routed queries",
      StringPrintf("%d households, %d-day base + %dh live, %d query "
                   "clients, snapshot cadence %.0f ms",
                   households, base_days, ingest_hours, query_threads,
                   snapshot_seconds * 1e3));

  // The immutable base: the first base_hours of every series.
  const auto make_base = [&]() -> Result<table::ColumnarBatch> {
    std::vector<int64_t> ids;
    std::vector<table::SeriesSlice> series;
    ids.reserve(rows);
    series.reserve(rows);
    for (size_t r = 0; r < rows; ++r) {
      ids.push_back(data.consumer(r).household_id);
      series.emplace_back(data.consumer(r).consumption.data(), base_hours);
    }
    return table::ColumnarBatch::FromSlices(
        std::move(ids), std::move(series),
        table::SeriesSlice(data.temperature().data(), base_hours));
  };
  const engines::TaskOptions histogram =
      engines::TaskOptions::Default(core::TaskType::kHistogram);

  // -- Panel 1: no-ingest baseline -----------------------------------------
  double baseline_p99 = 0.0;
  {
    table::DeltaStore store;
    auto base = make_base();
    if (!base.ok() || !store.AttachBase(*base).ok()) {
      std::fprintf(stderr, "base attach failed\n");
      return 1;
    }
    SharedReader shared(&store);
    if (Status st = shared.reader.Open(); !st.ok()) {
      std::fprintf(stderr, "reader: %s\n", st.ToString().c_str());
      return 1;
    }
    std::atomic<bool> stop{false};
    QueryPanel panel;
    std::thread timer([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(800));
      stop.store(true, std::memory_order_relaxed);
    });
    panel = RunQueryLoad(&shared, histogram, rows, query_threads, stop);
    timer.join();
    baseline_p99 = panel.p99;
    std::printf("no-ingest baseline: %lld queries, p50 %.4fs, p99 %.4fs, "
                "%.0f q/s\n\n",
                static_cast<long long>(panel.ok), panel.p50, panel.p99,
                panel.qps);
    ctx.report().AddRun(LambdaRecord(query_threads, 0.8, panel));
  }

  // -- Panel 2: ingest-rate sweep ------------------------------------------
  PrintRow({"target r/s", "accepted r/s", "fresh p50 s", "fresh p99 s",
            "queries ok", "query p50 s", "query p99 s", "alerts"});
  PrintDivider(8);

  double worst_freshness_p99 = 0.0;
  double worst_query_p99 = 0.0;
  bool sweep_failed = false;
  for (const double multiplier : {1.0, 4.0, 16.0}) {
    const double target_rate = base_rate * multiplier;
    table::DeltaStore store;
    auto base = make_base();
    if (!base.ok() || !store.AttachBase(*base).ok()) {
      std::fprintf(stderr, "base attach failed\n");
      return 1;
    }
    SharedReader shared(&store);
    if (Status st = shared.reader.Open(); !st.ok()) {
      std::fprintf(stderr, "reader: %s\n", st.ToString().c_str());
      return 1;
    }

    streaming::AlertLog alerts;
    streaming::StreamProcessor::Options processor_options;
    processor_options.delta = &store;
    streaming::StreamProcessor processor(processor_options);
    // Detectors see only the live window, so warm up quickly enough for
    // the injected mid-window spike to be past warmup.
    streaming::SpikeDetector::Options spike_options;
    spike_options.warmup_readings = std::min(4, ingest_hours / 2 - 1);
    processor.AddDetectorPrototype(
        std::make_unique<streaming::SpikeDetector>(spike_options));
    processor.SetAlertSink(
        [&alerts](const streaming::Alert& a) { alerts.Record(a); });

    // Snapshot thread: publish + drain freshness samples at the cadence.
    std::atomic<bool> stop_snapshots{false};
    std::vector<double> freshness;
    std::thread snapshotter([&] {
      while (!stop_snapshots.load(std::memory_order_relaxed)) {
        store.Snapshot(&freshness);
        {
          std::lock_guard<std::mutex> lock(shared.mu);
          (void)shared.reader.Refresh();
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double>(snapshot_seconds));
      }
    });

    // Query load runs for the whole ingest window.
    std::atomic<bool> stop_queries{false};
    QueryPanel panel;
    std::thread query_runner([&] {
      panel = RunQueryLoad(&shared, histogram, rows, query_threads,
                           stop_queries);
    });

    // Paced hour-major ingest on this thread: for each live hour, every
    // household reports, which keeps each household's stream in order.
    const auto start = std::chrono::steady_clock::now();
    int64_t sent = 0;
    int64_t accepted = 0;
    Stopwatch ingest_wall;
    for (int h = 0; h < ingest_hours; ++h) {
      const size_t hour = base_hours + static_cast<size_t>(h);
      for (size_t r = 0; r < rows; ++r) {
        streaming::StreamReading reading;
        reading.household_id = data.consumer(r).household_id;
        reading.hour = static_cast<int64_t>(hour);
        reading.consumption = data.consumer(r).consumption[hour];
        // One injected spike so the alert path has traffic.
        if (r == 1 && h == ingest_hours / 2) reading.consumption += 15.0;
        reading.temperature = data.temperature()[hour];
        if (processor.Process(reading).ok()) ++accepted;
        ++sent;
        if (sent % 64 == 0) {
          const auto due =
              start + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(
                              static_cast<double>(sent) / target_rate));
          std::this_thread::sleep_until(due);
        }
      }
    }
    const double ingest_seconds = ingest_wall.ElapsedSeconds();
    stop_queries.store(true, std::memory_order_relaxed);
    query_runner.join();
    // One final snapshot so every published reading's lag is sampled.
    stop_snapshots.store(true, std::memory_order_relaxed);
    snapshotter.join();
    store.Snapshot(&freshness);

    const double accepted_rate =
        ingest_seconds > 0 ? static_cast<double>(accepted) / ingest_seconds
                           : 0.0;
    const double fresh_p50 = Percentile(freshness, 0.50);
    const double fresh_p99 = Percentile(freshness, 0.99);
    worst_freshness_p99 = std::max(worst_freshness_p99, fresh_p99);
    worst_query_p99 = std::max(worst_query_p99, panel.p99);
    if (panel.failed > 0 || accepted != sent) sweep_failed = true;
    const int64_t alert_count =
        static_cast<int64_t>(alerts.Query(streaming::AlertQuery{}).size());
    PrintRow({Cell(target_rate), Cell(accepted_rate), Cell(fresh_p50),
              Cell(fresh_p99), CellInt(panel.ok), Cell(panel.p50),
              Cell(panel.p99), CellInt(alert_count)});

    obs::RunRecord record =
        LambdaRecord(query_threads, ingest_seconds, panel);
    record.ingest_rate = accepted_rate;
    record.freshness_p50_seconds = fresh_p50;
    record.freshness_p99_seconds = fresh_p99;
    ctx.report().AddRun(record);

    // -- Panel 3 (first config only): marker visibility --------------------
    if (multiplier == 1.0) {
      const size_t marker_hour = base_hours + static_cast<size_t>(ingest_hours);
      streaming::StreamReading marker;
      marker.household_id = data.consumer(0).household_id;
      marker.hour = static_cast<int64_t>(marker_hour);
      marker.consumption = 42.42;
      marker.temperature = data.temperature()[marker_hour];
      Stopwatch visibility_watch;
      if (!processor.Process(marker).ok()) {
        std::fprintf(stderr, "marker append rejected\n");
        return 1;
      }
      bool visible = false;
      while (visibility_watch.ElapsedSeconds() < 2.0) {
        store.Snapshot(&freshness);
        std::lock_guard<std::mutex> lock(shared.mu);
        if (!shared.reader.Refresh().ok()) break;
        storage::ScanScope scope;
        scope.row_begin = 0;
        scope.row_count = 1;
        auto scoped = shared.reader.NewScopedBatch(scope);
        if (scoped.ok() && scoped->batch.hours() > marker_hour &&
            scoped->batch.consumption(0)[marker_hour] == 42.42) {
          visible = true;
          break;
        }
      }
      std::printf("\nmarker reading visible to a routed query after "
                  "%.4f s (%s)\n\n",
                  visibility_watch.ElapsedSeconds(),
                  visible ? "ok" : "TIMED OUT");
      if (!visible) sweep_failed = true;
    }
  }

  std::printf(
      "\nShape to check: accepted rate tracks the target, freshness p99 "
      "stays near the snapshot cadence at every rate, and query p99 "
      "stays within 20%% of the no-ingest baseline.\n");

  if (Status st = ctx.Finish(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (!gate) return sweep_failed ? 1 : 0;

  int failures = sweep_failed ? 1 : 0;
  if (worst_freshness_p99 > freshness_limit) {
    std::fprintf(stderr,
                 "INGEST GATE: freshness p99 %.3fs exceeds the %.3fs "
                 "bound\n",
                 worst_freshness_p99, freshness_limit);
    ++failures;
  }
  const double query_bound =
      std::max(baseline_p99 * kQueryP99RegressionFactor,
               baseline_p99 + kQueryP99SlackSeconds);
  if (worst_query_p99 > query_bound) {
    std::fprintf(stderr,
                 "INGEST GATE: query p99 under ingest %.4fs exceeds "
                 "%.4fs (baseline %.4fs)\n",
                 worst_query_p99, query_bound, baseline_p99);
    ++failures;
  }
  if (failures > 0) return 1;
  std::printf("ingest gates passed: freshness p99 %.3fs, query p99 "
              "%.4fs vs baseline %.4fs\n",
              worst_freshness_p99, worst_query_p99, baseline_p99);
  return 0;
}

}  // namespace
}  // namespace smartmeter::bench

int main(int argc, char** argv) {
  smartmeter::bench::BenchContext ctx(argc, argv, /*default_scale=*/40.0);
  return smartmeter::bench::Run(ctx);
}
