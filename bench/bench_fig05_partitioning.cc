// Reproduces Figure 5: impact of file partitioning on Matlab analytics
// (3-line algorithm, cold start, 0.5 - 2 paper-GB).
//
// Expected shape (paper): the un-partitioned runs grow much faster than
// the partitioned ones because Matlab must first build an index over the
// whole big file before it can address a single consumer.
#include <cstdio>

#include "bench_common.h"
#include "engines/matlab_engine.h"

namespace {

using namespace smartmeter;         // NOLINT
using namespace smartmeter::bench;  // NOLINT

int Run(BenchContext& ctx) {
  PrintHeader("Figure 5: partitioning impact on Matlab, 3-line algorithm",
              StringPrintf("cold start; scale %.0f", ctx.scale_divisor()));
  PrintRow({"paper GB", "households", "partitioned (s)",
            "un-partitioned (s)", "unpart / part"});
  PrintDivider(5);
  for (double paper_gb : {0.5, 1.0, 1.5, 2.0}) {
    const int households = ctx.HouseholdsForPaperGb(paper_gb);
    auto part = ctx.PartitionedDir(households);
    auto single = ctx.SingleCsv(households);
    if (!part.ok() || !single.ok()) return 1;

    engines::TaskOptions request = engines::TaskOptions::Default(core::TaskType::kThreeLine);

    double part_seconds = 0.0, single_seconds = 0.0;
    {
      engines::MatlabEngine engine;
      if (!engine.Attach(*part).ok()) return 1;
      auto metrics = engine.RunTask(request, nullptr);
      if (!metrics.ok()) {
        std::fprintf(stderr, "%s\n", metrics.status().ToString().c_str());
        return 1;
      }
      part_seconds = metrics->seconds;
    }
    {
      engines::MatlabEngine engine;
      if (!engine.Attach(*single).ok()) return 1;
      auto metrics = engine.RunTask(request, nullptr);
      if (!metrics.ok()) return 1;
      single_seconds = metrics->seconds;
    }
    PrintRow({Cell(paper_gb), CellInt(households), Cell(part_seconds),
              Cell(single_seconds),
              Cell(part_seconds > 0 ? single_seconds / part_seconds : 0)});
  }
  std::printf(
      "\nShape to check: the last column stays > 1 and grows with size "
      "(one big file forces a full index build).\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx(argc, argv, /*default_scale=*/40.0);
  return Run(ctx);
}
