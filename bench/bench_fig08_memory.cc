// Reproduces Figure 8(a-d): memory consumption of each algorithm on
// Matlab, MADLib and System C (average RSS sampled during the run, the
// paper's `free -m` methodology).
//
// Expected shape (paper): Matlab and System C lowest (per-file streaming
// and mmap respectively); MADLib higher; similarity by far the most
// memory-hungry task, 3-line the least.
#include <cstdio>

#include "bench_common.h"
#include "common/memory_probe.h"
#include "engines/benchmark_runner.h"
#include "engines/engine_factory.h"

namespace {

using namespace smartmeter;         // NOLINT
using namespace smartmeter::bench;  // NOLINT

int Run(BenchContext& ctx) {
  const double paper_gb = ctx.flags().GetDouble("paper-gb", 5.0);
  const int households = ctx.HouseholdsForPaperGb(paper_gb);
  PrintHeader("Figure 8: memory consumption per algorithm and platform",
              StringPrintf("%d households (~%.1f paper-GB); average RSS "
                           "delta over the task, sampled every 20 ms",
                           households, ctx.PaperGbForHouseholds(households)));
  PrintRow({"task", "matlab (MB)", "madlib (MB)", "system-c (MB)"});
  PrintDivider(4);

  for (core::TaskType task : core::kAllTasks) {
    std::vector<std::string> cells = {std::string(core::TaskName(task))};
    for (engines::EngineKind kind :
         {engines::EngineKind::kMatlab, engines::EngineKind::kMadlib,
          engines::EngineKind::kSystemC}) {
      engines::EngineFactoryOptions factory;
      factory.spool_dir = ctx.SpoolDir("fig08");
      auto engine = engines::MakeEngine(kind, factory);
      auto source = (kind == engines::EngineKind::kMatlab)
                        ? ctx.PartitionedDir(households)
                        : ctx.SingleCsv(households);
      if (!source.ok()) return 1;
      const int64_t baseline = CurrentRssBytes();
      if (!engine->Attach(*source).ok()) return 1;
      engines::TaskOptions request = engines::TaskOptions::Default(task);
      auto report = engines::RunTaskOnEngine(engine.get(), request, 1,
                                             /*sample_memory=*/true,
                                             /*keep_outputs=*/false);
      if (!report.ok()) {
        std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
        return 1;
      }
      const double mb =
          static_cast<double>(report->memory_bytes - baseline) /
          (1024.0 * 1024.0);
      cells.push_back(Cell(mb > 0 ? mb : 0.0));
    }
    PrintRow(cells);
  }
  std::printf(
      "\nShape to check: similarity row largest, 3line row smallest; "
      "madlib column >= matlab and system-c.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx(argc, argv, /*default_scale=*/80.0);
  return Run(ctx);
}
