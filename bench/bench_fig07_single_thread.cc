// Reproduces Figure 7(a-d): cold-start single-threaded running time of
// each algorithm (3-line, PAR, histogram, similarity) on Matlab, MADLib
// and System C for growing data sizes.
//
// Methodology matches Section 5.3.3: data is already loaded into each
// platform's storage (that cost is Figure 4); every task then runs cold,
// i.e. nothing is pre-extracted into memory.
//
// Expected shape (paper): System C clearly fastest everywhere; Matlab
// runner-up except histogram (where MADLib does fine); MADLib worst for
// 3-line, PAR and similarity; similarity is the most expensive task.
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "engines/engine_factory.h"

namespace {

using namespace smartmeter;         // NOLINT
using namespace smartmeter::bench;  // NOLINT

constexpr engines::EngineKind kEngines[] = {engines::EngineKind::kMatlab,
                                            engines::EngineKind::kMadlib,
                                            engines::EngineKind::kSystemC};

int Run(BenchContext& ctx) {
  PrintHeader(
      "Figure 7: single-threaded cold-start execution times",
      StringPrintf("scale %.0f; paper sweeps 2-10 GB (5,460-27,300 "
                   "households); similarity capped like the paper's 4 GB "
                   "points",
                   ctx.scale_divisor()));

  const std::vector<double> sizes = {2.0, 4.0, 6.0, 8.0, 10.0};
  // results[task][paper_gb][engine] = seconds.
  std::map<core::TaskType, std::map<double, std::map<int, double>>> results;

  for (double paper_gb : sizes) {
    const int households = ctx.HouseholdsForPaperGb(paper_gb);
    for (int e = 0; e < 3; ++e) {
      engines::EngineFactoryOptions factory;
      factory.spool_dir = ctx.SpoolDir("fig07");
      auto engine = engines::MakeEngine(kEngines[e], factory);
      engine->SetThreads(1);
      auto source = (kEngines[e] == engines::EngineKind::kMatlab)
                        ? ctx.PartitionedDir(households)
                        : ctx.SingleCsv(households);
      if (!source.ok()) return 1;
      if (!engine->Attach(*source).ok()) return 1;
      for (core::TaskType task : core::kAllTasks) {
        if (task == core::TaskType::kSimilarity && paper_gb > 4.0) {
          continue;  // Prohibitive for Matlab/MADLib in the paper too.
        }
        engines::TaskOptions request = engines::TaskOptions::Default(task);
        auto metrics = engine->RunTask(request, nullptr);
        if (!metrics.ok()) {
          std::fprintf(stderr, "%s\n",
                       metrics.status().ToString().c_str());
          return 1;
        }
        results[task][paper_gb][e] = metrics->seconds;
      }
    }
  }

  for (core::TaskType task : core::kAllTasks) {
    std::printf("\n-- Figure 7 (%s) --\n",
                std::string(core::TaskName(task)).c_str());
    PrintRow({"paper GB", "households", "matlab (s)", "madlib (s)",
              "system-c (s)"});
    PrintDivider(5);
    for (const auto& [paper_gb, row] : results[task]) {
      PrintRow({Cell(paper_gb),
                CellInt(ctx.HouseholdsForPaperGb(paper_gb)),
                Cell(row.at(0)), Cell(row.at(1)), Cell(row.at(2))});
    }
  }
  std::printf(
      "\nShape to check: system-c column smallest everywhere; madlib worst "
      "for 3line/par/similarity;\nsimilarity rows cost the most overall.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx(argc, argv, /*default_scale=*/80.0);
  return Run(ctx);
}
