// Ablation (ours, referenced from DESIGN.md): fidelity of the Section 4
// data generator. Compares population statistics of the seed versus a
// generated population of the same size, and sweeps the generator's two
// knobs (cluster count k, noise sigma).
//
// Expected: generated populations track the seed's mean level, daily
// shape and thermal gradients; more clusters preserve profile diversity
// better (lower centroid-approximation error); more noise raises the
// per-reading variance without moving the means much.
#include <cstdio>

#include "bench_common.h"
#include "datagen/generator.h"
#include "datagen/seed_generator.h"
#include "stats/descriptive.h"
#include "timeseries/calendar.h"

namespace {

using namespace smartmeter;         // NOLINT
using namespace smartmeter::bench;  // NOLINT

struct PopulationStats {
  double mean_level = 0.0;       // Mean hourly kWh across population.
  double mean_stddev = 0.0;      // Mean per-household stddev.
  double evening_ratio = 0.0;    // Mean 18:00 load / 03:00 load.
  double winter_ratio = 0.0;     // January / May consumption.
};

PopulationStats Describe(const MeterDataset& ds) {
  PopulationStats stats;
  const int may_start = (31 + 28 + 31 + 30) * 24;
  const int days = static_cast<int>(ds.hours()) / 24;
  for (const auto& c : ds.consumers()) {
    stats.mean_level += stats::Mean(c.consumption);
    stats.mean_stddev += stats::SampleStddev(c.consumption);
    double evening = 0.0, night = 0.0, january = 0.0, may = 0.0;
    for (int d = 0; d < days; ++d) {
      evening += c.consumption[static_cast<size_t>(d * 24 + 18)];
      night += c.consumption[static_cast<size_t>(d * 24 + 3)];
    }
    for (int h = 0; h < 31 * 24 && h < static_cast<int>(ds.hours()); ++h) {
      january += c.consumption[static_cast<size_t>(h)];
    }
    for (int h = may_start;
         h < may_start + 31 * 24 && h < static_cast<int>(ds.hours()); ++h) {
      may += c.consumption[static_cast<size_t>(h)];
    }
    stats.evening_ratio += night > 0 ? evening / night : 0.0;
    stats.winter_ratio += may > 0 ? january / may : 0.0;
  }
  const double n = static_cast<double>(ds.num_consumers());
  stats.mean_level /= n;
  stats.mean_stddev /= n;
  stats.evening_ratio /= n;
  stats.winter_ratio /= n;
  return stats;
}

int Run(BenchContext& ctx) {
  const int households =
      static_cast<int>(ctx.flags().GetInt("households", 80));
  PrintHeader("Ablation: data generator fidelity (Section 4 pipeline)",
              StringPrintf("seed = %d archetype households, one year",
                           households));

  datagen::SeedGeneratorOptions seed_options;
  seed_options.num_households = households;
  seed_options.hours = ctx.hours();
  seed_options.seed = 11;
  auto seed = datagen::GenerateSeedDataset(seed_options);
  if (!seed.ok()) return 1;
  const PopulationStats seed_stats = Describe(*seed);

  PrintRow({"population", "mean kWh", "mean stddev", "evening/night",
            "january/may"});
  PrintDivider(5);
  PrintRow({"seed", Cell(seed_stats.mean_level),
            Cell(seed_stats.mean_stddev), Cell(seed_stats.evening_ratio),
            Cell(seed_stats.winter_ratio)});

  for (int k : {2, 4, 8, 16}) {
    datagen::DataGeneratorOptions options;
    options.num_clusters = k;
    options.noise_sigma = 0.08;
    auto generator = datagen::DataGenerator::Train(*seed, options);
    if (!generator.ok()) return 1;
    auto generated =
        generator->Generate(households, seed->temperature(), 31);
    if (!generated.ok()) return 1;
    const PopulationStats gen_stats = Describe(*generated);
    PrintRow({StringPrintf("generated k=%d", k),
              Cell(gen_stats.mean_level), Cell(gen_stats.mean_stddev),
              Cell(gen_stats.evening_ratio), Cell(gen_stats.winter_ratio)});
  }

  std::printf("\n-- noise sweep (k = 8) --\n");
  PrintRow({"sigma", "mean kWh", "mean stddev"});
  PrintDivider(3);
  for (double sigma : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    datagen::DataGeneratorOptions options;
    options.num_clusters = 8;
    options.noise_sigma = sigma;
    auto generator = datagen::DataGenerator::Train(*seed, options);
    if (!generator.ok()) return 1;
    auto generated =
        generator->Generate(households, seed->temperature(), 33);
    if (!generated.ok()) return 1;
    const PopulationStats gen_stats = Describe(*generated);
    PrintRow({Cell(sigma), Cell(gen_stats.mean_level),
              Cell(gen_stats.mean_stddev)});
  }
  std::printf(
      "\nExpected: generated rows track the seed row; stddev rises with "
      "sigma while the mean is stable.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx(argc, argv);
  return Run(ctx);
}
