// Ablation (ours, the paper's Section 3 open question): what does it
// cost each storage architecture to absorb one new day of readings?
// "Read-optimized data structures that help improve running time may be
// expensive to update" -- this bench quantifies that trade:
//   * per-consumer CSV files (Matlab layout): append 24 lines per file;
//   * heap-file row store + B+-tree (MADLib layout): tuple appends into
//     the tail page, WAL included;
//   * mmap'd column store (System C layout): the household-major
//     columnar image cannot be appended in place -- rebuild the file.
#include <cstdio>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "storage/column_store.h"
#include "storage/csv.h"
#include "storage/row_store.h"
#include "timeseries/calendar.h"

namespace {

using namespace smartmeter;         // NOLINT
using namespace smartmeter::bench;  // NOLINT

int Run(BenchContext& ctx) {
  const int households =
      static_cast<int>(ctx.flags().GetInt("households", 150));
  PrintHeader(
      "Ablation: cost of appending one day of new readings",
      StringPrintf("%d households with a year loaded; appending 24 new "
                   "hourly readings each (%d rows)",
                   households, households * kHoursPerDay));

  auto dataset = ctx.GetDataset(households);
  if (!dataset.ok()) return 1;
  // The "new day": replay day 0 shifted to the next hour indexes.
  const int base_hour = static_cast<int>((*dataset)->hours());

  PrintRow({"storage (platform)", "append day (s)",
            "per reading (microsec)", "note"});
  PrintDivider(4);

  // --- Per-consumer CSV files (Matlab). ---------------------------------
  {
    // A private copy: appending to the shared bench cache would corrupt
    // other figures' inputs.
    auto files = storage::WritePartitionedCsv(
        **dataset, ctx.workdir() + "/updates_part");
    if (!files.ok()) return 1;
    Stopwatch clock;
    for (int i = 0; i < households; ++i) {
      FILE* f = std::fopen((*files)[static_cast<size_t>(i)].c_str(), "a");
      if (f == nullptr) return 1;
      const auto& c = (*dataset)->consumer(static_cast<size_t>(i));
      for (int h = 0; h < kHoursPerDay; ++h) {
        std::fprintf(f, "%lld,%d,%.4f,%.2f\n",
                     static_cast<long long>(c.household_id),
                     base_hour + h,
                     c.consumption[static_cast<size_t>(h)],
                     (*dataset)->temperature()[static_cast<size_t>(h)]);
      }
      std::fclose(f);
    }
    const double seconds = clock.ElapsedSeconds();
    PrintRow({"per-consumer CSV (matlab)", Cell(seconds),
              Cell(seconds * 1e6 / (households * kHoursPerDay)),
              "append 24 lines per file"});
  }

  // --- Heap-file row store (MADLib). -------------------------------------
  {
    storage::RowStore store;
    if (!store.LoadFromDataset(**dataset, /*interleave=*/true).ok()) {
      return 1;
    }
    Stopwatch clock;
    if (!store.ReopenForAppend().ok()) return 1;
    for (int h = 0; h < kHoursPerDay; ++h) {
      for (int i = 0; i < households; ++i) {
        const auto& c = (*dataset)->consumer(static_cast<size_t>(i));
        if (!store
                 .Append({c.household_id, base_hour + h,
                          c.consumption[static_cast<size_t>(h)],
                          (*dataset)->temperature()[static_cast<size_t>(
                              h)]})
                 .ok()) {
          return 1;
        }
      }
    }
    if (!store.FinishLoad().ok()) return 1;
    const double seconds = clock.ElapsedSeconds();
    PrintRow({"heap row store (madlib)", Cell(seconds),
              Cell(seconds * 1e6 / (households * kHoursPerDay)),
              "tail-page appends + WAL + index"});
  }

  // --- Column store (System C). -------------------------------------------
  {
    const std::string image = ctx.workdir() + "/updates.smcol";
    if (!storage::ColumnStore::WriteFile(**dataset, image).ok()) return 1;
    // The update: extend every household's segment by one day. The
    // household-major layout leaves no room in place, so the engine
    // rebuilds the image from the merged data.
    MeterDataset merged = **dataset;
    std::vector<double> temp = merged.temperature();
    for (int h = 0; h < kHoursPerDay; ++h) {
      temp.push_back(temp[static_cast<size_t>(h)]);
    }
    Stopwatch clock;
    merged.SetTemperature(std::move(temp));
    for (auto& c : *merged.mutable_consumers()) {
      for (int h = 0; h < kHoursPerDay; ++h) {
        c.consumption.push_back(c.consumption[static_cast<size_t>(h)]);
      }
    }
    if (!storage::ColumnStore::WriteFile(merged, image).ok()) return 1;
    storage::ColumnStore reopened;
    if (!reopened.OpenMapped(image).ok()) return 1;
    const double seconds = clock.ElapsedSeconds();
    PrintRow({"column store (system-c)", Cell(seconds),
              Cell(seconds * 1e6 / (households * kHoursPerDay)),
              "full image rebuild + remap"});
  }

  std::printf(
      "\nExpected: the read-optimized column store pays far more per new "
      "reading than the row store's tail-page\nappends -- and its rebuild "
      "is O(table), so the gap widens with data size (try --households). "
      "This is the\ntrade-off the paper flags when excluding updates from "
      "v1 of the benchmark.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx(argc, argv, /*default_scale=*/80.0);
  return Run(ctx);
}
