#include "bench_common.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>

#include "common/logging.h"
#include "common/string_util.h"
#include "datagen/seed_generator.h"
#include "storage/csv.h"
#include "timeseries/calendar.h"

namespace smartmeter::bench {

namespace fs = std::filesystem;

BenchContext::BenchContext(int argc, char** argv, double default_scale)
    : flags_(argc, argv) {
  workdir_ = flags_.GetString("workdir", "/tmp/smartmeter-bench");
  report_path_ = flags_.GetString("report", "");
  hours_ = static_cast<int>(flags_.GetInt("hours", kHoursPerYear));
  scale_divisor_ = flags_.GetDouble("scale", default_scale);
  seed_ = static_cast<uint64_t>(flags_.GetInt("seed", 20150323));
  SM_CHECK(hours_ >= 10 * kHoursPerDay)
      << "benches need at least 10 days of data per household";
  SM_CHECK(scale_divisor_ > 0) << "--scale must be positive";
  std::error_code ec;
  fs::create_directories(workdir_, ec);
  if (argc > 0) {
    report_.set_label(fs::path(argv[0]).filename().string());
  }
}

BenchContext::~BenchContext() {
  if (report_path_.empty() || report_written_) return;
  if (Status st = Finish(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
  }
}

Status BenchContext::Finish() {
  if (report_path_.empty()) return Status::OK();
  report_written_ = true;
  report_.CaptureMetrics();
  report_.CaptureSpans();
  std::string error;
  if (!report_.WriteFile(report_path_, &error)) {
    return Status::IOError("cannot write report " + report_path_ + ": " +
                           error);
  }
  std::printf("\nreport: %s (%zu runs, %zu spans)\n", report_path_.c_str(),
              report_.runs().size(), report_.spans().size());
  return Status::OK();
}

int BenchContext::HouseholdsForPaperGb(double paper_gb) const {
  const double households = paper_gb * kHouseholdsPerPaperGb /
                            scale_divisor_;
  return std::max(4, static_cast<int>(std::llround(households)));
}

double BenchContext::PaperGbForHouseholds(int households) const {
  return static_cast<double>(households) * scale_divisor_ /
         kHouseholdsPerPaperGb;
}

Result<MeterDataset> BenchContext::BuildDataset(int households) {
  // The paper's methodology: a small real seed, then the Section 4
  // generator scales it up. Our "real" seed is the archetype synthesizer.
  datagen::SeedGeneratorOptions seed_options;
  seed_options.num_households = std::min(households, 100);
  seed_options.hours = hours_;
  seed_options.seed = seed_;
  SM_ASSIGN_OR_RETURN(MeterDataset seed,
                      datagen::GenerateSeedDataset(seed_options));
  if (households <= seed_options.num_households) {
    seed.TruncateConsumers(static_cast<size_t>(households));
    return seed;
  }
  datagen::DataGeneratorOptions gen_options;
  gen_options.num_clusters = 8;
  gen_options.noise_sigma = 0.08;
  SM_ASSIGN_OR_RETURN(datagen::DataGenerator generator,
                      datagen::DataGenerator::Train(seed, gen_options));
  return generator.Generate(households, seed.temperature(), seed_ + 1);
}

Result<const MeterDataset*> BenchContext::GetDataset(int households) {
  if (static_cast<size_t>(households) > cache_.num_consumers()) {
    SM_ASSIGN_OR_RETURN(cache_, BuildDataset(households));
  }
  if (static_cast<size_t>(households) == cache_.num_consumers()) {
    return &cache_;
  }
  // Subset view: copy the first n consumers (cheap at bench scale).
  subset_ = MeterDataset();
  subset_.SetTemperature(cache_.temperature());
  for (int i = 0; i < households; ++i) {
    subset_.AddConsumer(cache_.consumer(static_cast<size_t>(i)));
  }
  return &subset_;
}

namespace {

/// True when `marker` exists; otherwise runs `write` and creates it.
template <typename WriteFn>
Status EnsureMaterialized(const std::string& marker, const WriteFn& write) {
  if (fs::exists(marker)) return Status::OK();
  SM_RETURN_IF_ERROR(write());
  FILE* f = std::fopen(marker.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot write marker " + marker);
  std::fclose(f);
  return Status::OK();
}

}  // namespace

Result<table::DataSource> BenchContext::SingleCsv(int households) {
  const std::string dir =
      workdir_ + "/data_h" + std::to_string(households) + "_t" +
      std::to_string(hours_);
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string path = dir + "/single.csv";
  SM_ASSIGN_OR_RETURN(const MeterDataset* ds, GetDataset(households));
  SM_RETURN_IF_ERROR(EnsureMaterialized(path + ".done", [&] {
    return storage::WriteReadingsCsv(*ds, path);
  }));
  return table::DataSource::SingleCsv(path);
}

Result<table::DataSource> BenchContext::PartitionedDir(int households) {
  const std::string dir =
      workdir_ + "/data_h" + std::to_string(households) + "_t" +
      std::to_string(hours_) + "/part";
  SM_ASSIGN_OR_RETURN(const MeterDataset* ds, GetDataset(households));
  SM_RETURN_IF_ERROR(EnsureMaterialized(dir + ".done", [&]() -> Status {
    SM_ASSIGN_OR_RETURN(std::vector<std::string> paths,
                        storage::WritePartitionedCsv(*ds, dir));
    (void)paths;
    return Status::OK();
  }));
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".csv") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return table::DataSource::PartitionedDir(std::move(files));
}

Result<table::DataSource> BenchContext::HouseholdLines(int households) {
  const std::string dir =
      workdir_ + "/data_h" + std::to_string(households) + "_t" +
      std::to_string(hours_);
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string path = dir + "/wide.csv";
  SM_ASSIGN_OR_RETURN(const MeterDataset* ds, GetDataset(households));
  SM_RETURN_IF_ERROR(EnsureMaterialized(path + ".done", [&] {
    return storage::WriteHouseholdLinesCsv(*ds, path);
  }));
  return table::DataSource::HouseholdLines(path);
}

Result<table::DataSource> BenchContext::WholeFileDir(int households,
                                                       int num_files) {
  const std::string dir =
      workdir_ + "/data_h" + std::to_string(households) + "_t" +
      std::to_string(hours_) + "/whole_f" + std::to_string(num_files);
  SM_ASSIGN_OR_RETURN(const MeterDataset* ds, GetDataset(households));
  SM_RETURN_IF_ERROR(EnsureMaterialized(dir + ".done", [&]() -> Status {
    SM_ASSIGN_OR_RETURN(std::vector<std::string> paths,
                        storage::WriteWholeHouseholdFiles(*ds, dir,
                                                          num_files));
    (void)paths;
    return Status::OK();
  }));
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".csv") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return table::DataSource::WholeFileDir(std::move(files));
}

std::string BenchContext::SpoolDir(const std::string& tag) const {
  return workdir_ + "/spool_" + tag;
}

void PrintHeader(const std::string& title, const std::string& note) {
  std::printf("\n== %s ==\n%s\n\n", title.c_str(), note.c_str());
}

void PrintRow(const std::vector<std::string>& cells) {
  std::printf("|");
  for (const std::string& cell : cells) {
    std::printf(" %s |", cell.c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

void PrintDivider(size_t columns) {
  std::printf("|");
  for (size_t i = 0; i < columns; ++i) std::printf("---|");
  std::printf("\n");
}

std::string Cell(double value) { return StringPrintf("%.3f", value); }

std::string CellInt(int64_t value) {
  return StringPrintf("%lld", static_cast<long long>(value));
}

}  // namespace smartmeter::bench
