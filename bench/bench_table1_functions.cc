// Reproduces Table 1: statistical functions built into the five tested
// platforms versus hand-implemented by the benchmark authors.
#include <cstdio>

#include "bench_common.h"
#include "engines/engine_factory.h"

int main(int argc, char** argv) {
  smartmeter::bench::BenchContext ctx(argc, argv);
  smartmeter::bench::PrintHeader(
      "Table 1: statistical functions built into the five tested platforms",
      "'yes' = built-in, 'no' = implemented by the benchmark, "
      "'third party' = external library (Apache Math in the paper).");
  smartmeter::bench::PrintRow(
      {"Function", "Matlab", "MADLib", "System C", "Spark", "Hive"});
  smartmeter::bench::PrintDivider(6);
  for (const auto& row : smartmeter::engines::BuiltinFunctionMatrix()) {
    smartmeter::bench::PrintRow({row.function, row.matlab, row.madlib,
                                 row.system_c, row.spark, row.hive});
  }
  std::printf(
      "\nIn this reproduction every 'no' cell is the hand-written kernel in "
      "src/stats + src/core,\nexactly as the paper's authors had to write "
      "them for System C.\n");
  return 0;
}
