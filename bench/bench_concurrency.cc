// Serving-mode benchmark (engine API v2): concurrent query throughput
// against a pool of attached System C sessions, versus the same queries
// issued sequentially through RunBenchmark.
//
// Sweeps clients x sessions with closed-loop clients (each client waits
// for its query before issuing the next), then demonstrates the two
// shed paths of the serving layer: a 1 ms deadline query on a large
// dataset (cooperatively cancelled inside the kernel) and an admission
// burst against a capacity-1 queue.
//
// Expected shape: aggregate queries/second scales with sessions until
// the host runs out of cores; the 8x8 point clearly beats the
// sequential baseline; shed queries resolve in ~the deadline, not the
// full query time.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "engines/benchmark_runner.h"
#include "engines/systemc_engine.h"
#include "exec/serving_runner.h"

namespace {

using namespace smartmeter;         // NOLINT
using namespace smartmeter::bench;  // NOLINT

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t index = std::min(
      values.size() - 1,
      static_cast<size_t>(p * static_cast<double>(values.size() - 1) + 0.5));
  return values[index];
}

obs::RunRecord ServingRecord(int sessions, double wall_seconds) {
  obs::RunRecord record;
  record.engine = "systemc";
  record.task = "histogram";
  record.layout = "single-csv";
  record.threads = sessions;
  record.warm = true;
  record.task_seconds = wall_seconds;
  return record;
}

int Run(BenchContext& ctx) {
  const int households = ctx.HouseholdsForPaperGb(
      ctx.flags().GetDouble("paper-gb", 8.0));
  const int queries_per_client =
      static_cast<int>(ctx.flags().GetInt("queries", 4));
  const int max_sessions = static_cast<int>(ctx.flags().GetInt("sessions", 8));
  const int baseline_queries = 8;

  auto source = ctx.SingleCsv(households);
  if (!source.ok()) {
    std::fprintf(stderr, "data: %s\n", source.status().ToString().c_str());
    return 1;
  }
  const engines::TaskOptions histogram =
      engines::TaskOptions::Default(core::TaskType::kHistogram);

  PrintHeader(
      "Concurrent serving: closed-loop clients vs sequential batch",
      StringPrintf("%d households (~%.1f paper-GB), histogram task, "
                   "%d queries per client, System C sessions",
                   households, ctx.PaperGbForHouseholds(households),
                   queries_per_client));

  // -- Sequential baseline: N independent RunBenchmark calls ---------------
  // Each call pays the full old-API cost per query: construct an engine,
  // attach, warm up, run. Prime the spool first (untimed) so no call
  // carries the one-off CSV-to-columnar conversion.
  auto make_baseline_spec = [&] {
    engines::RunSpec spec;
    spec.kind = engines::EngineKind::kSystemC;
    spec.factory.spool_dir = ctx.SpoolDir("conc_seq");
    spec.source = *source;
    spec.options = histogram;
    spec.threads = 1;
    spec.warm = true;
    return spec;
  };
  if (auto prime = engines::RunBenchmark(make_baseline_spec());
      !prime.ok()) {
    std::fprintf(stderr, "prime: %s\n", prime.status().ToString().c_str());
    return 1;
  }
  Stopwatch baseline_wall;
  for (int i = 0; i < baseline_queries; ++i) {
    engines::RunSpec spec = make_baseline_spec();
    spec.report = &ctx.report();
    auto report = engines::RunBenchmark(spec);
    if (!report.ok()) {
      std::fprintf(stderr, "baseline: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
  }
  const double sequential_task_seconds = baseline_wall.ElapsedSeconds();
  const double sequential_qps =
      sequential_task_seconds > 0
          ? static_cast<double>(baseline_queries) / sequential_task_seconds
          : 0.0;
  {
    obs::RunRecord record = ServingRecord(1, sequential_task_seconds);
    record.threads = 1;
    record.outcome = "ok";
    record.clients = 1;
    record.queries_ok = baseline_queries;
    record.queries_per_second = sequential_qps;
    ctx.report().AddRun(record);
  }

  // -- Attached session pool ----------------------------------------------
  std::vector<std::unique_ptr<engines::SystemCEngine>> pool;
  for (int i = 0; i < max_sessions; ++i) {
    auto engine = std::make_unique<engines::SystemCEngine>(
        ctx.SpoolDir(StringPrintf("conc_s%d", i)));
    engine->SetThreads(1);
    auto attach = engine->Attach(*source);
    if (!attach.ok()) {
      std::fprintf(stderr, "attach: %s\n",
                   attach.status().ToString().c_str());
      return 1;
    }
    pool.push_back(std::move(engine));
  }

  PrintRow({"clients", "sessions", "ok", "shed", "p50 s", "p99 s",
            "queries/s", "vs sequential"});
  PrintDivider(8);

  double qps_8x8 = 0.0;
  for (int sessions : {2, max_sessions}) {
    if (sessions > max_sessions) continue;
    for (int clients : {1, 4, 8}) {
      exec::ServingOptions serving;
      serving.queue_capacity = 64;
      serving.threads_per_query = 1;
      exec::ServingRunner runner(serving);
      for (int s = 0; s < sessions; ++s) runner.AddSession(pool[s].get());

      std::mutex lat_mu;
      std::vector<double> latencies;
      int64_t ok = 0;
      int64_t shed = 0;
      Stopwatch wall;
      std::vector<std::thread> client_threads;
      for (int c = 0; c < clients; ++c) {
        client_threads.emplace_back([&, c] {
          for (int q = 0; q < queries_per_client; ++q) {
            exec::QueryRequest request;
            request.options = histogram;
            request.label = StringPrintf("client-%d/q%d", c, q);
            auto ticket = runner.Submit(std::move(request));
            if (!ticket.ok()) {
              std::lock_guard<std::mutex> lock(lat_mu);
              ++shed;
              continue;
            }
            const exec::QueryOutcome& outcome = (*ticket)->Wait();
            std::lock_guard<std::mutex> lock(lat_mu);
            if (outcome.status.ok()) {
              ++ok;
              latencies.push_back(outcome.queue_seconds +
                                  outcome.run_seconds);
            } else {
              ++shed;
            }
          }
        });
      }
      for (std::thread& t : client_threads) t.join();
      runner.Shutdown();
      const double wall_seconds = wall.ElapsedSeconds();
      const double qps =
          wall_seconds > 0 ? static_cast<double>(ok) / wall_seconds : 0.0;
      if (clients == 8 && sessions == 8) qps_8x8 = qps;

      const double p50 = Percentile(latencies, 0.50);
      const double p99 = Percentile(latencies, 0.99);
      PrintRow({CellInt(clients), CellInt(sessions), CellInt(ok),
                CellInt(shed), Cell(p50), Cell(p99), Cell(qps),
                StringPrintf("%.2fx", sequential_qps > 0
                                          ? qps / sequential_qps
                                          : 0.0)});

      obs::RunRecord record = ServingRecord(sessions, wall_seconds);
      record.outcome = "ok";
      record.clients = clients;
      record.queries_ok = ok;
      record.queries_shed = shed;
      record.p50_seconds = p50;
      record.p99_seconds = p99;
      record.queries_per_second = qps;
      ctx.report().AddRun(record);
    }
  }

  // -- Shed path 1: a 1 ms deadline on a query that takes far longer -------
  {
    exec::ServingOptions serving;
    serving.threads_per_query = 1;
    exec::ServingRunner runner(serving);
    runner.AddSession(pool[0].get());
    exec::QueryRequest request;
    request.options = histogram;
    request.deadline = std::chrono::milliseconds(1);
    request.label = "deadline-1ms";
    auto ticket = runner.Submit(std::move(request));
    if (!ticket.ok()) {
      std::fprintf(stderr, "deadline submit: %s\n",
                   ticket.status().ToString().c_str());
      return 1;
    }
    const exec::QueryOutcome& outcome = (*ticket)->Wait();
    runner.Shutdown();
    const double latency = outcome.queue_seconds + outcome.run_seconds;
    std::printf("\n1 ms deadline query: %s after %.4f s (shed=%s)\n",
                outcome.status.ToString().c_str(), latency,
                outcome.shed ? "yes" : "no");
    if (!outcome.shed) {
      std::fprintf(stderr,
                   "expected the 1 ms deadline query to be shed\n");
      return 1;
    }
    obs::RunRecord record = ServingRecord(1, latency);
    record.outcome = "shed";
    record.clients = 1;
    record.queries_shed = 1;
    record.p50_seconds = latency;
    record.p99_seconds = latency;
    ctx.report().AddRun(record);
  }

  // -- Shed path 2: admission burst against a capacity-1 queue -------------
  {
    exec::ServingOptions serving;
    serving.queue_capacity = 1;
    serving.threads_per_query = 1;
    exec::ServingRunner runner(serving);
    runner.AddSession(pool[0].get());
    std::vector<std::shared_ptr<exec::QueryTicket>> tickets;
    int64_t queue_shed = 0;
    for (int q = 0; q < 8; ++q) {
      exec::QueryRequest request;
      request.options = histogram;
      request.label = StringPrintf("burst/q%d", q);
      auto ticket = runner.Submit(std::move(request));
      if (ticket.ok()) {
        tickets.push_back(*ticket);
      } else {
        ++queue_shed;
      }
    }
    int64_t burst_ok = 0;
    for (const auto& ticket : tickets) {
      if (ticket->Wait().status.ok()) ++burst_ok;
    }
    runner.Shutdown();
    std::printf("admission burst (capacity 1): %lld ran, %lld shed at "
                "Submit with ResourceExhausted\n",
                static_cast<long long>(burst_ok),
                static_cast<long long>(queue_shed));
    obs::RunRecord record = ServingRecord(1, 0.0);
    record.outcome = queue_shed > 0 ? "shed" : "ok";
    record.clients = 1;
    record.queries_ok = burst_ok;
    record.queries_shed = queue_shed;
    ctx.report().AddRun(record);
  }

  std::printf(
      "\nShape to check: queries/s grows with sessions; 8 clients x 8 "
      "sessions beats the sequential baseline (%.2f q/s); deadline and "
      "queue-full queries report as shed.\n",
      sequential_qps);
  if (qps_8x8 > 0.0 && qps_8x8 <= sequential_qps) {
    std::fprintf(stderr,
                 "8x8 serving throughput (%.2f q/s) did not beat the "
                 "sequential baseline (%.2f q/s)\n",
                 qps_8x8, sequential_qps);
    return 1;
  }
  Status finish = ctx.Finish();
  if (!finish.ok()) {
    std::fprintf(stderr, "report: %s\n", finish.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx(argc, argv, /*default_scale=*/40.0);
  return Run(ctx);
}
