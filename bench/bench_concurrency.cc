// Serving-mode benchmark (serving API v3): concurrent query throughput
// against a sharded pool of attached System C sessions, versus the same
// queries issued sequentially through RunBenchmark.
//
// Four experiments:
//   1. Closed-loop clients x sessions sweep vs the sequential baseline
//      (each client waits for its query before issuing the next).
//   2. Sharded routed-query throughput: the same multi-tenant mix of
//      single-household queries on 1 shard vs 4 shards with EQUAL total
//      sessions. Routed queries scan only the owning shard's slice, so
//      4 shards cut per-query work to a quarter; the binary FAILS unless
//      4-shard throughput is at least 2x the 1-shard run.
//   3. Sustained open-loop load: warm tenants at fixed arrival rates,
//      then a hostile tenant floods during an overload window, then
//      recovery. Reports p99 under saturation and per-tenant shed
//      rates; the binary FAILS if a well-behaved tenant's shed rate
//      during overload exceeds the fairness bound.
//   4. The two single-query shed paths: a 1 ms deadline and an
//      admission burst against a capacity-1 queue.
//
// Expected shape: aggregate queries/second scales with sessions; the
// 4-shard run beats 1-shard by ~4x on routed queries; hostile flooding
// sheds hostile queries (quota + eviction) while polite tenants stay
// near zero shed.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "engines/benchmark_runner.h"
#include "engines/systemc_engine.h"
#include "exec/serving_runner.h"

namespace {

using namespace smartmeter;         // NOLINT
using namespace smartmeter::bench;  // NOLINT

constexpr double kShardSpeedupGate = 2.0;
constexpr double kPoliteShedRateGate = 0.15;

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t index = std::min(
      values.size() - 1,
      static_cast<size_t>(p * static_cast<double>(values.size() - 1) + 0.5));
  return values[index];
}

obs::RunRecord ServingRecord(int sessions, double wall_seconds) {
  obs::RunRecord record;
  record.engine = "systemc";
  record.task = "histogram";
  record.layout = "single-csv";
  record.threads = sessions;
  record.warm = true;
  record.task_seconds = wall_seconds;
  return record;
}

exec::QueryRequest RoutedHistogram(const engines::TaskOptions& task,
                                   const std::string& tenant,
                                   const std::string& label,
                                   int64_t household) {
  return *exec::QueryRequest::Builder()
              .Task(task)
              .Tenant(tenant)
              .Label(label)
              .Household(household)
              .Build();
}

obs::TenantRow MakeTenantRow(const std::string& tenant,
                             const exec::TenantServingStats& stats,
                             double p99_seconds) {
  obs::TenantRow row;
  row.tenant = tenant;
  row.submitted = stats.submitted;
  row.queries_ok = stats.completed_ok;
  row.queries_shed = stats.shed;
  row.shed_rate = stats.submitted > 0 ? static_cast<double>(stats.shed) /
                                            static_cast<double>(stats.submitted)
                                      : 0.0;
  row.p99_seconds = p99_seconds;
  return row;
}

exec::TenantServingStats TenantDelta(const exec::ServingStats& now,
                                     const exec::ServingStats& before,
                                     const std::string& tenant) {
  exec::TenantServingStats delta;
  const auto now_it = now.tenants.find(tenant);
  if (now_it == now.tenants.end()) return delta;
  delta = now_it->second;
  const auto before_it = before.tenants.find(tenant);
  if (before_it != before.tenants.end()) {
    delta.submitted -= before_it->second.submitted;
    delta.admitted -= before_it->second.admitted;
    delta.completed_ok -= before_it->second.completed_ok;
    delta.shed -= before_it->second.shed;
    delta.failed -= before_it->second.failed;
  }
  return delta;
}

int Run(BenchContext& ctx) {
  const int households = ctx.HouseholdsForPaperGb(
      ctx.flags().GetDouble("paper-gb", 8.0));
  const int queries_per_client =
      static_cast<int>(ctx.flags().GetInt("queries", 4));
  const int max_sessions = static_cast<int>(ctx.flags().GetInt("sessions", 8));
  const int routed_queries =
      static_cast<int>(ctx.flags().GetInt("routed-queries", 24));
  const double overload_seconds =
      ctx.flags().GetDouble("overload-ms", 1500.0) / 1e3;
  const double recovery_seconds =
      ctx.flags().GetDouble("recovery-ms", 1000.0) / 1e3;
  const int baseline_queries = 8;
  const int pool_size = std::max(max_sessions, 4);

  auto source = ctx.SingleCsv(households);
  if (!source.ok()) {
    std::fprintf(stderr, "data: %s\n", source.status().ToString().c_str());
    return 1;
  }
  const engines::TaskOptions histogram =
      engines::TaskOptions::Default(core::TaskType::kHistogram);

  PrintHeader(
      "Concurrent serving: sharded multi-tenant runner vs sequential batch",
      StringPrintf("%d households (~%.1f paper-GB), histogram task, "
                   "%d queries per client, System C sessions",
                   households, ctx.PaperGbForHouseholds(households),
                   queries_per_client));

  // -- Sequential baseline: N independent RunBenchmark calls ---------------
  // Each call pays the full old-API cost per query: construct an engine,
  // attach, warm up, run. Prime the spool first (untimed) so no call
  // carries the one-off CSV-to-columnar conversion.
  auto make_baseline_spec = [&] {
    engines::RunSpec spec;
    spec.kind = engines::EngineKind::kSystemC;
    spec.factory.spool_dir = ctx.SpoolDir("conc_seq");
    spec.source = *source;
    spec.options = histogram;
    spec.threads = 1;
    spec.warm = true;
    return spec;
  };
  if (auto prime = engines::RunBenchmark(make_baseline_spec());
      !prime.ok()) {
    std::fprintf(stderr, "prime: %s\n", prime.status().ToString().c_str());
    return 1;
  }
  Stopwatch baseline_wall;
  for (int i = 0; i < baseline_queries; ++i) {
    engines::RunSpec spec = make_baseline_spec();
    spec.report = &ctx.report();
    auto report = engines::RunBenchmark(spec);
    if (!report.ok()) {
      std::fprintf(stderr, "baseline: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
  }
  const double sequential_task_seconds = baseline_wall.ElapsedSeconds();
  const double sequential_qps =
      sequential_task_seconds > 0
          ? static_cast<double>(baseline_queries) / sequential_task_seconds
          : 0.0;
  {
    obs::RunRecord record = ServingRecord(1, sequential_task_seconds);
    record.threads = 1;
    record.outcome = "ok";
    record.clients = 1;
    record.queries_ok = baseline_queries;
    record.queries_per_second = sequential_qps;
    ctx.report().AddRun(record);
  }

  // -- Attached session pool ----------------------------------------------
  // Each session's SetThreads() is the intra-query parallelism knob (the
  // serving layer no longer overrides it per query).
  std::vector<std::unique_ptr<engines::SystemCEngine>> pool;
  for (int i = 0; i < pool_size; ++i) {
    auto engine = std::make_unique<engines::SystemCEngine>(
        ctx.SpoolDir(StringPrintf("conc_s%d", i)));
    engine->SetThreads(1);
    auto attach = engine->Attach(*source);
    if (!attach.ok()) {
      std::fprintf(stderr, "attach: %s\n",
                   attach.status().ToString().c_str());
      return 1;
    }
    pool.push_back(std::move(engine));
  }

  // Household ids for routed point queries, from one results-bearing run.
  std::vector<int64_t> household_ids;
  {
    auto report = engines::RunTaskOnEngine(
        pool[0].get(), exec::QueryContext::Background(), histogram,
        /*threads=*/1, /*sample_memory=*/false, /*keep_outputs=*/true);
    if (!report.ok()) {
      std::fprintf(stderr, "household scan: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    for (const auto& row : report->results.Get<core::HistogramResult>()) {
      household_ids.push_back(row.household_id);
    }
  }
  const std::string routing_dir = ctx.SpoolDir("conc_routing");

  // -- Closed-loop clients x sessions sweep --------------------------------
  PrintRow({"clients", "sessions", "ok", "shed", "p50 s", "p99 s",
            "queries/s", "vs sequential"});
  PrintDivider(8);

  double qps_8x8 = 0.0;
  for (int sessions : {2, max_sessions}) {
    if (sessions > max_sessions) continue;
    for (int clients : {1, 4, 8}) {
      exec::ServingOptions serving;
      serving.queue_capacity = 64;
      exec::ServingRunner runner(serving);
      for (int s = 0; s < sessions; ++s) runner.AddSession(pool[s].get());

      std::mutex lat_mu;
      std::vector<double> latencies;
      int64_t ok = 0;
      int64_t shed = 0;
      Stopwatch wall;
      std::vector<std::thread> client_threads;
      for (int c = 0; c < clients; ++c) {
        client_threads.emplace_back([&, c] {
          for (int q = 0; q < queries_per_client; ++q) {
            auto request =
                exec::QueryRequest::Builder()
                    .Task(histogram)
                    .Tenant(StringPrintf("client-%d", c))
                    .Label(StringPrintf("client-%d/q%d", c, q))
                    .Build();
            auto ticket = runner.Submit(*request);
            if (!ticket.ok()) {
              std::lock_guard<std::mutex> lock(lat_mu);
              ++shed;
              continue;
            }
            const exec::QueryOutcome& outcome = (*ticket)->Wait();
            std::lock_guard<std::mutex> lock(lat_mu);
            if (outcome.status.ok()) {
              ++ok;
              latencies.push_back(outcome.queue_seconds +
                                  outcome.run_seconds);
            } else {
              ++shed;
            }
          }
        });
      }
      for (std::thread& t : client_threads) t.join();
      runner.Shutdown();
      const double wall_seconds = wall.ElapsedSeconds();
      const double qps =
          wall_seconds > 0 ? static_cast<double>(ok) / wall_seconds : 0.0;
      if (clients == 8 && sessions == 8) qps_8x8 = qps;

      const double p50 = Percentile(latencies, 0.50);
      const double p99 = Percentile(latencies, 0.99);
      PrintRow({CellInt(clients), CellInt(sessions), CellInt(ok),
                CellInt(shed), Cell(p50), Cell(p99), Cell(qps),
                StringPrintf("%.2fx", sequential_qps > 0
                                          ? qps / sequential_qps
                                          : 0.0)});

      obs::RunRecord record = ServingRecord(sessions, wall_seconds);
      record.outcome = "ok";
      record.clients = clients;
      record.queries_ok = ok;
      record.queries_shed = shed;
      record.p50_seconds = p50;
      record.p99_seconds = p99;
      record.queries_per_second = qps;
      ctx.report().AddRun(record);
    }
  }

  // -- Sharded routed-query throughput: 1 shard vs 4, equal sessions -------
  // Three tenants issue single-household queries closed-loop. On one
  // shard every query scans the whole table; on four shards it scans the
  // owning shard's quarter, so equal sessions should go ~4x faster.
  std::printf("\nSharded routed queries (%d per tenant, 3 tenants, "
              "4 sessions total):\n",
              routed_queries);
  PrintRow({"shards", "ok", "shed", "p50 s", "p99 s", "queries/s"});
  PrintDivider(6);
  double routed_qps[2] = {0.0, 0.0};
  const size_t kShardConfigs[2] = {1, 4};
  for (int config = 0; config < 2; ++config) {
    exec::ServingOptions serving;
    serving.num_shards = kShardConfigs[config];
    serving.queue_capacity = 64;
    exec::ServingRunner runner(serving);
    if (Status routing = runner.OpenRouting(*source, routing_dir);
        !routing.ok()) {
      std::fprintf(stderr, "routing: %s\n", routing.ToString().c_str());
      return 1;
    }
    for (int s = 0; s < 4; ++s) runner.AddSession(pool[s].get());

    std::mutex lat_mu;
    std::vector<double> latencies;
    int64_t ok = 0;
    int64_t shed = 0;
    Stopwatch wall;
    std::vector<std::thread> tenants;
    for (int t = 0; t < 3; ++t) {
      tenants.emplace_back([&, t] {
        const std::string tenant = StringPrintf("tenant-%d", t);
        for (int q = 0; q < routed_queries; ++q) {
          const int64_t household =
              household_ids[(t * routed_queries + q) % household_ids.size()];
          auto ticket = runner.Submit(RoutedHistogram(
              histogram, tenant, StringPrintf("%s/q%d", tenant.c_str(), q),
              household));
          if (!ticket.ok()) {
            std::lock_guard<std::mutex> lock(lat_mu);
            ++shed;
            continue;
          }
          const exec::QueryOutcome& outcome = (*ticket)->Wait();
          std::lock_guard<std::mutex> lock(lat_mu);
          if (outcome.status.ok()) {
            ++ok;
            latencies.push_back(outcome.queue_seconds + outcome.run_seconds);
          } else {
            ++shed;
          }
        }
      });
    }
    for (std::thread& t : tenants) t.join();
    runner.Shutdown();
    const double wall_seconds = wall.ElapsedSeconds();
    routed_qps[config] =
        wall_seconds > 0 ? static_cast<double>(ok) / wall_seconds : 0.0;
    const double p50 = Percentile(latencies, 0.50);
    const double p99 = Percentile(latencies, 0.99);
    PrintRow({CellInt(static_cast<int64_t>(kShardConfigs[config])),
              CellInt(ok), CellInt(shed), Cell(p50), Cell(p99),
              Cell(routed_qps[config])});

    obs::RunRecord record = ServingRecord(4, wall_seconds);
    record.outcome = "ok";
    record.clients = 3;
    record.queries_ok = ok;
    record.queries_shed = shed;
    record.p50_seconds = p50;
    record.p99_seconds = p99;
    record.queries_per_second = routed_qps[config];
    record.shards = static_cast<int>(kShardConfigs[config]);
    const exec::ServingStats stats = runner.stats();
    for (const auto& [tenant, tenant_stats] : stats.tenants) {
      record.tenants.push_back(MakeTenantRow(tenant, tenant_stats, p99));
    }
    ctx.report().AddRun(record);
  }
  const double shard_speedup =
      routed_qps[0] > 0 ? routed_qps[1] / routed_qps[0] : 0.0;
  std::printf("4-shard vs 1-shard routed throughput: %.2fx (gate: >= %.1fx)\n",
              shard_speedup, kShardSpeedupGate);

  // -- Sustained open-loop load: warm, overload, recover -------------------
  // Arrival rates are calibrated from the measured 4-shard capacity:
  // two polite tenants each arrive at 1/4 of capacity; during the
  // overload window a hostile tenant floods at 2x capacity on top.
  const double capacity_qps = std::max(routed_qps[1], 1.0);
  const double polite_interval = 4.0 / capacity_qps;
  const double hostile_interval = 0.5 / capacity_qps;
  struct TaggedTicket {
    std::shared_ptr<exec::QueryTicket> ticket;
    int phase;  // 0 = overload, 1 = recovery.
  };
  exec::ServingOptions serving;
  serving.num_shards = 4;
  serving.queue_capacity = 16;
  serving.tenant_queue_quota = 6;
  exec::ServingRunner runner(serving);
  if (Status routing = runner.OpenRouting(*source, routing_dir);
      !routing.ok()) {
    std::fprintf(stderr, "routing: %s\n", routing.ToString().c_str());
    return 1;
  }
  for (int s = 0; s < 4; ++s) runner.AddSession(pool[s].get());

  std::mutex ticket_mu;
  std::vector<std::pair<std::string, TaggedTicket>> tagged;
  std::atomic<int> phase{0};
  std::atomic<bool> stop{false};
  const auto open_loop = [&](const std::string& tenant, double interval,
                             bool hostile) {
    int q = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const int now_phase = phase.load(std::memory_order_relaxed);
      if (hostile && now_phase != 0) break;  // Hostile floods overload only.
      const int64_t household = household_ids[q % household_ids.size()];
      auto ticket = runner.Submit(RoutedHistogram(
          histogram, tenant, StringPrintf("%s/q%d", tenant.c_str(), q),
          household));
      ++q;
      if (ticket.ok()) {
        std::lock_guard<std::mutex> lock(ticket_mu);
        tagged.push_back({tenant, {*ticket, now_phase}});
      }
      std::this_thread::sleep_for(std::chrono::duration<double>(interval));
    }
  };

  const exec::ServingStats before_overload = runner.stats();
  Stopwatch overload_wall;
  std::vector<std::thread> load_threads;
  load_threads.emplace_back(open_loop, "polite-a", polite_interval, false);
  load_threads.emplace_back(open_loop, "polite-b", polite_interval, false);
  std::thread hostile_thread(open_loop, "hostile", hostile_interval, true);
  std::this_thread::sleep_for(
      std::chrono::duration<double>(overload_seconds));
  phase.store(1, std::memory_order_relaxed);
  hostile_thread.join();
  const double measured_overload_seconds = overload_wall.ElapsedSeconds();
  const exec::ServingStats after_overload = runner.stats();
  std::this_thread::sleep_for(
      std::chrono::duration<double>(recovery_seconds));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : load_threads) t.join();
  runner.Drain();
  const exec::ServingStats after_recovery = runner.stats();
  runner.Shutdown();

  // Latency percentiles per tenant per phase from the resolved tickets.
  std::vector<double> phase_latencies[2];
  std::vector<double> polite_overload_latencies;
  for (auto& [tenant, entry] : tagged) {
    const exec::QueryOutcome& outcome = entry.ticket->Wait();
    if (!outcome.status.ok()) continue;
    const double latency = outcome.queue_seconds + outcome.run_seconds;
    phase_latencies[entry.phase].push_back(latency);
    if (entry.phase == 0 && tenant != "hostile") {
      polite_overload_latencies.push_back(latency);
    }
  }

  std::printf("\nSustained load (overload %.1fs, recovery %.1fs, "
              "capacity ~%.1f q/s):\n",
              overload_seconds, recovery_seconds, capacity_qps);
  PrintRow({"phase", "tenant", "submitted", "ok", "shed", "shed rate"});
  PrintDivider(6);
  bool fairness_ok = true;
  const auto report_phase = [&](const char* phase_name,
                                const exec::ServingStats& now,
                                const exec::ServingStats& before,
                                double p99, double wall_seconds) {
    obs::RunRecord record = ServingRecord(4, wall_seconds);
    record.outcome = "ok";
    record.clients = 3;
    record.shards = 4;
    record.p99_seconds = p99;
    for (const char* tenant : {"polite-a", "polite-b", "hostile"}) {
      const exec::TenantServingStats delta = TenantDelta(now, before, tenant);
      if (delta.submitted == 0) continue;
      const obs::TenantRow row = MakeTenantRow(tenant, delta, p99);
      record.queries_ok += row.queries_ok;
      record.queries_shed += row.queries_shed;
      record.tenants.push_back(row);
      PrintRow({phase_name, tenant, CellInt(row.submitted),
                CellInt(row.queries_ok), CellInt(row.queries_shed),
                StringPrintf("%.3f", row.shed_rate)});
      if (std::string_view(phase_name) == "overload" &&
          std::string_view(tenant) != "hostile" &&
          row.shed_rate > kPoliteShedRateGate) {
        fairness_ok = false;
      }
    }
    record.queries_per_second =
        wall_seconds > 0
            ? static_cast<double>(record.queries_ok) / wall_seconds
            : 0.0;
    ctx.report().AddRun(record);
  };
  report_phase("overload", after_overload, before_overload,
               Percentile(phase_latencies[0], 0.99),
               measured_overload_seconds);
  report_phase("recovery", after_recovery, after_overload,
               Percentile(phase_latencies[1], 0.99), recovery_seconds);
  std::printf("p99 under saturation: %.3f s (polite %.3f s); "
              "p99 in recovery: %.3f s\n",
              Percentile(phase_latencies[0], 0.99),
              Percentile(polite_overload_latencies, 0.99),
              Percentile(phase_latencies[1], 0.99));

  // -- Shed path 1: a 1 ms deadline expires while queued -------------------
  // A single session drains the queue one query at a time, so a handful
  // of blockers ahead of the deadline query guarantees it waits longer
  // than 1 ms regardless of dataset size.
  {
    exec::ServingRunner deadline_runner(exec::ServingOptions{});
    deadline_runner.AddSession(pool[0].get());
    std::vector<std::shared_ptr<exec::QueryTicket>> blockers;
    for (int q = 0; q < 6; ++q) {
      auto blocker = exec::QueryRequest::Builder()
                         .Task(histogram)
                         .Tenant("deadline")
                         .Label(StringPrintf("blocker/q%d", q))
                         .Build();
      auto ticket = deadline_runner.Submit(*blocker);
      if (ticket.ok()) blockers.push_back(*ticket);
    }
    auto request = exec::QueryRequest::Builder()
                       .Task(histogram)
                       .Tenant("deadline")
                       .Label("deadline-1ms")
                       .Deadline(std::chrono::milliseconds(1))
                       .Build();
    auto ticket = deadline_runner.Submit(*request);
    if (!ticket.ok()) {
      std::fprintf(stderr, "deadline submit: %s\n",
                   ticket.status().ToString().c_str());
      return 1;
    }
    const exec::QueryOutcome& outcome = (*ticket)->Wait();
    for (const auto& blocker : blockers) blocker->Wait();
    deadline_runner.Shutdown();
    const double latency = outcome.queue_seconds + outcome.run_seconds;
    std::printf("\n1 ms deadline query: %s after %.4f s (shed=%s)\n",
                outcome.status.ToString().c_str(), latency,
                outcome.shed ? "yes" : "no");
    if (!outcome.shed) {
      std::fprintf(stderr,
                   "expected the 1 ms deadline query to be shed\n");
      return 1;
    }
    obs::RunRecord record = ServingRecord(1, latency);
    record.outcome = "shed";
    record.clients = 1;
    record.queries_shed = 1;
    record.p50_seconds = latency;
    record.p99_seconds = latency;
    ctx.report().AddRun(record);
  }

  // -- Shed path 2: admission burst against a capacity-1 queue -------------
  {
    exec::ServingOptions burst_options;
    burst_options.queue_capacity = 1;
    exec::ServingRunner burst_runner(burst_options);
    burst_runner.AddSession(pool[0].get());
    std::vector<std::shared_ptr<exec::QueryTicket>> tickets;
    int64_t queue_shed = 0;
    for (int q = 0; q < 8; ++q) {
      auto request = exec::QueryRequest::Builder()
                         .Task(histogram)
                         .Tenant("burst")
                         .Label(StringPrintf("burst/q%d", q))
                         .Build();
      auto ticket = burst_runner.Submit(*request);
      if (ticket.ok()) {
        tickets.push_back(*ticket);
      } else {
        ++queue_shed;
      }
    }
    int64_t burst_ok = 0;
    for (const auto& ticket : tickets) {
      if (ticket->Wait().status.ok()) ++burst_ok;
    }
    burst_runner.Shutdown();
    std::printf("admission burst (capacity 1): %lld ran, %lld shed at "
                "Submit with ResourceExhausted\n",
                static_cast<long long>(burst_ok),
                static_cast<long long>(queue_shed));
    obs::RunRecord record = ServingRecord(1, 0.0);
    record.outcome = queue_shed > 0 ? "shed" : "ok";
    record.clients = 1;
    record.queries_ok = burst_ok;
    record.queries_shed = queue_shed;
    ctx.report().AddRun(record);
  }

  std::printf(
      "\nShape to check: queries/s grows with sessions; 4-shard routed "
      "queries beat 1-shard %.2fx; polite tenants shed ~0 under hostile "
      "flooding; deadline and queue-full queries report as shed.\n",
      shard_speedup);
  int exit_code = 0;
  if (qps_8x8 > 0.0 && qps_8x8 <= sequential_qps) {
    std::fprintf(stderr,
                 "GATE FAILED: 8x8 serving throughput (%.2f q/s) did not "
                 "beat the sequential baseline (%.2f q/s)\n",
                 qps_8x8, sequential_qps);
    exit_code = 1;
  }
  if (shard_speedup < kShardSpeedupGate) {
    std::fprintf(stderr,
                 "GATE FAILED: 4-shard routed throughput is only %.2fx the "
                 "1-shard run (gate: >= %.1fx)\n",
                 shard_speedup, kShardSpeedupGate);
    exit_code = 1;
  }
  if (!fairness_ok) {
    std::fprintf(stderr,
                 "GATE FAILED: a well-behaved tenant shed more than %.0f%% "
                 "of its queries during hostile overload\n",
                 kPoliteShedRateGate * 100.0);
    exit_code = 1;
  }
  Status finish = ctx.Finish();
  if (!finish.ok()) {
    std::fprintf(stderr, "report: %s\n", finish.ToString().c_str());
    return 1;
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx(argc, argv, /*default_scale=*/40.0);
  return Run(ctx);
}
