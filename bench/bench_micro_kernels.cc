// Google-benchmark microbenchmarks of the statistical kernels every
// platform engine is built on. These are the operators the paper's Table
// 1 says System C lacks and the authors hand-wrote; regressions here move
// every figure.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <span>
#include <string>

#include "common/rng.h"
#include "core/histogram_task.h"
#include "simd/simd.h"
#include "core/par_task.h"
#include "core/similarity_task.h"
#include "core/three_line_task.h"
#include "datagen/temperature_model.h"
#include "stats/distance.h"
#include "stats/kmeans.h"
#include "stats/ols.h"
#include "stats/quantile.h"
#include "storage/btree.h"
#include "storage/csv.h"
#include "timeseries/calendar.h"

namespace {

using namespace smartmeter;  // NOLINT

std::vector<double> RandomSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.Uniform(0.0, 5.0);
  return v;
}

void BM_Quantile8760(benchmark::State& state) {
  const std::vector<double> v = RandomSeries(kHoursPerYear, 1);
  for (auto _ : state) {
    auto q = stats::Quantile(v, 0.9);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_Quantile8760);

void BM_EquiWidthHistogram8760(benchmark::State& state) {
  const std::vector<double> v = RandomSeries(kHoursPerYear, 2);
  for (auto _ : state) {
    auto hist = core::ComputeConsumptionHistogram(v);
    benchmark::DoNotOptimize(hist);
  }
}
BENCHMARK(BM_EquiWidthHistogram8760);

void BM_SimpleOls(benchmark::State& state) {
  const std::vector<double> x = RandomSeries(static_cast<size_t>(
                                                 state.range(0)),
                                             3);
  const std::vector<double> y = RandomSeries(static_cast<size_t>(
                                                 state.range(0)),
                                             4);
  for (auto _ : state) {
    auto fit = stats::FitLine(x, y);
    benchmark::DoNotOptimize(fit);
  }
}
BENCHMARK(BM_SimpleOls)->Arg(100)->Arg(1000)->Arg(8760);

void BM_CosinePair8760(benchmark::State& state) {
  const std::vector<double> a = RandomSeries(kHoursPerYear, 5);
  const std::vector<double> b = RandomSeries(kHoursPerYear, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::CosineSimilarity(a, b));
  }
}
BENCHMARK(BM_CosinePair8760);

void BM_ThreeLineOneConsumer(benchmark::State& state) {
  const std::vector<double> temp =
      datagen::GenerateTemperatureSeries(kHoursPerYear);
  std::vector<double> consumption(kHoursPerYear);
  Rng rng(7);
  for (size_t t = 0; t < consumption.size(); ++t) {
    consumption[t] = 0.4 + 0.1 * std::max(0.0, 12.0 - temp[t]) +
                     0.05 * std::max(0.0, temp[t] - 20.0) +
                     rng.NextDouble() * 0.1;
  }
  for (auto _ : state) {
    auto fit = core::ComputeThreeLine(consumption, temp, 1);
    benchmark::DoNotOptimize(fit);
  }
}
BENCHMARK(BM_ThreeLineOneConsumer);

void BM_ParOneConsumer(benchmark::State& state) {
  const std::vector<double> temp =
      datagen::GenerateTemperatureSeries(kHoursPerYear);
  const std::vector<double> consumption = RandomSeries(kHoursPerYear, 8);
  for (auto _ : state) {
    auto profile = core::ComputeDailyProfile(consumption, temp, 1);
    benchmark::DoNotOptimize(profile);
  }
}
BENCHMARK(BM_ParOneConsumer);

void BM_KMeansProfiles(benchmark::State& state) {
  Rng rng(9);
  std::vector<std::vector<double>> profiles;
  for (int i = 0; i < 200; ++i) {
    std::vector<double> p(24);
    for (double& x : p) x = rng.Uniform(0, 2);
    profiles.push_back(std::move(p));
  }
  for (auto _ : state) {
    auto result = stats::KMeans(profiles, 8);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_KMeansProfiles);

void BM_BTreeInsert(benchmark::State& state) {
  for (auto _ : state) {
    storage::BPlusTree tree;
    Rng rng(10);
    for (int i = 0; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(
          tree.Insert(static_cast<int64_t>(rng.NextUint64() >> 16),
                      static_cast<uint64_t>(i)));
    }
  }
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(100000);

void BM_BTreeLookup(benchmark::State& state) {
  storage::BPlusTree tree;
  for (int64_t i = 0; i < 100000; ++i) {
    (void)tree.Insert(i * 3, static_cast<uint64_t>(i));
  }
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.Lookup(static_cast<int64_t>(rng.UniformInt(300000))));
  }
}
BENCHMARK(BM_BTreeLookup);

void BM_ParseReadingRow(benchmark::State& state) {
  const std::string line = "12345,4821,1.2345,-12.50";
  for (auto _ : state) {
    auto row = storage::ParseReadingRow(line);
    benchmark::DoNotOptimize(row);
  }
}
BENCHMARK(BM_ParseReadingRow);

void BM_TopKSimilarity(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<std::vector<double>> series;
  for (int i = 0; i < n; ++i) {
    series.push_back(RandomSeries(kHoursPerYear, 100 + i));
  }
  std::vector<core::SeriesView> views;
  for (int i = 0; i < n; ++i) views.push_back({i, series[i]});
  for (auto _ : state) {
    auto result = core::ComputeSimilarityTopK(views);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_TopKSimilarity)->Arg(16)->Arg(32)->Arg(64)->Complexity(benchmark::oNSquared);

// ---------------------------------------------------------------------------
// Vector-vs-scalar panels for the SIMD layer. Each kernel appears twice:
// the dispatched (widest available) path and the same call pinned to the
// scalar backend via ScopedLevel, so `--benchmark_filter=Simd` prints the
// speedup table that EXPERIMENTS.md quotes. On a scalar-only host or an
// SM_DISABLE_SIMD build both rows measure the same code.
// ---------------------------------------------------------------------------

simd::Level PanelLevel(int64_t scalar) {
  return scalar != 0 ? simd::Level::kScalar : simd::DetectedLevel();
}

void BM_SimdDot8760(benchmark::State& state) {
  const simd::ScopedLevel guard(PanelLevel(state.range(0)));
  const std::vector<double> x = RandomSeries(kHoursPerYear, 21);
  const std::vector<double> y = RandomSeries(kHoursPerYear, 22);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::Dot(x, y));
  }
  state.SetLabel(std::string(simd::LevelName(simd::ActiveLevel())));
}
BENCHMARK(BM_SimdDot8760)->Arg(0)->Arg(1);

void BM_SimdHistogramBin8760(benchmark::State& state) {
  const simd::ScopedLevel guard(PanelLevel(state.range(0)));
  const std::vector<double> v = RandomSeries(kHoursPerYear, 23);
  std::vector<int64_t> counts(32);
  for (auto _ : state) {
    std::fill(counts.begin(), counts.end(), 0);
    simd::HistogramBin(v, 0.0, 5.0 / 32.0, counts);
    benchmark::DoNotOptimize(counts.data());
  }
  state.SetLabel(std::string(simd::LevelName(simd::ActiveLevel())));
}
BENCHMARK(BM_SimdHistogramBin8760)->Arg(0)->Arg(1);

void BM_SimdSelectBands8760(benchmark::State& state) {
  const simd::ScopedLevel guard(PanelLevel(state.range(0)));
  const std::vector<double> values = RandomSeries(kHoursPerYear, 24);
  const std::vector<double> temps = RandomSeries(kHoursPerYear, 25);
  std::vector<int32_t> bins(kHoursPerYear);
  simd::BinIndicesInt32(temps, 0.25, bins);
  // 20 dense bins covering [0, 5): thresholds bracketing the middle of
  // the uniform consumption range, so both bands stay busy.
  std::vector<double> lo_table(20, 2.0);
  std::vector<double> hi_table(20, 3.0);
  std::vector<int32_t> lo_idx;
  std::vector<int32_t> hi_idx;
  for (auto _ : state) {
    lo_idx.clear();
    hi_idx.clear();
    simd::SelectBands(values, bins, 0, lo_table, hi_table, &lo_idx, &hi_idx);
    benchmark::DoNotOptimize(lo_idx.data());
    benchmark::DoNotOptimize(hi_idx.data());
  }
  state.SetLabel(std::string(simd::LevelName(simd::ActiveLevel())));
}
BENCHMARK(BM_SimdSelectBands8760)->Arg(0)->Arg(1);

void BM_SimdAddResidualYear(benchmark::State& state) {
  const simd::ScopedLevel guard(PanelLevel(state.range(0)));
  const std::vector<double> c = RandomSeries(kHoursPerYear, 26);
  const std::vector<double> t = RandomSeries(kHoursPerYear, 27);
  const std::vector<double> beta = RandomSeries(kHoursPerDay, 28);
  std::vector<double> acc(kHoursPerDay, 0.0);
  const std::span<const double> cs(c);
  const std::span<const double> ts(t);
  for (auto _ : state) {
    std::fill(acc.begin(), acc.end(), 0.0);
    for (int day = 0; day < kDaysPerYear; ++day) {
      const size_t t0 = static_cast<size_t>(day) * kHoursPerDay;
      simd::AddResidual(acc, cs.subspan(t0, kHoursPerDay),
                        ts.subspan(t0, kHoursPerDay), beta);
    }
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetLabel(std::string(simd::LevelName(simd::ActiveLevel())));
}
BENCHMARK(BM_SimdAddResidualYear)->Arg(0)->Arg(1);

std::string RandomCsvChunk(size_t rows, uint64_t seed) {
  Rng rng(seed);
  std::string text;
  for (size_t r = 0; r < rows; ++r) {
    text += std::to_string(rng.UniformInt(100000));
    text += ',';
    text += std::to_string(rng.UniformInt(8760));
    text += ',';
    text += std::to_string(rng.Uniform(0.0, 5.0));
    text += ',';
    text += std::to_string(rng.Uniform(-20.0, 35.0));
    text += '\n';
  }
  return text;
}

void BM_SimdFindNewlines64K(benchmark::State& state) {
  const simd::ScopedLevel guard(PanelLevel(state.range(0)));
  const std::string chunk = RandomCsvChunk(2048, 29);
  for (auto _ : state) {
    size_t lines = 0;
    size_t pos = 0;
    while (pos < chunk.size()) {
      const size_t nl = simd::FindByte(chunk, pos, '\n');
      if (nl == std::string::npos) break;
      ++lines;
      pos = nl + 1;
    }
    benchmark::DoNotOptimize(lines);
  }
  state.SetLabel(std::string(simd::LevelName(simd::ActiveLevel())));
}
BENCHMARK(BM_SimdFindNewlines64K)->Arg(0)->Arg(1);

void BM_SimdCountByte64K(benchmark::State& state) {
  const simd::ScopedLevel guard(PanelLevel(state.range(0)));
  const std::string chunk = RandomCsvChunk(2048, 30);
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::CountByte(chunk, ','));
  }
  state.SetLabel(std::string(simd::LevelName(simd::ActiveLevel())));
}
BENCHMARK(BM_SimdCountByte64K)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
