// Google-benchmark microbenchmarks of the statistical kernels every
// platform engine is built on. These are the operators the paper's Table
// 1 says System C lacks and the authors hand-wrote; regressions here move
// every figure.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/histogram_task.h"
#include "core/par_task.h"
#include "core/similarity_task.h"
#include "core/three_line_task.h"
#include "datagen/temperature_model.h"
#include "stats/distance.h"
#include "stats/kmeans.h"
#include "stats/ols.h"
#include "stats/quantile.h"
#include "storage/btree.h"
#include "storage/csv.h"
#include "timeseries/calendar.h"

namespace {

using namespace smartmeter;  // NOLINT

std::vector<double> RandomSeries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.Uniform(0.0, 5.0);
  return v;
}

void BM_Quantile8760(benchmark::State& state) {
  const std::vector<double> v = RandomSeries(kHoursPerYear, 1);
  for (auto _ : state) {
    auto q = stats::Quantile(v, 0.9);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_Quantile8760);

void BM_EquiWidthHistogram8760(benchmark::State& state) {
  const std::vector<double> v = RandomSeries(kHoursPerYear, 2);
  for (auto _ : state) {
    auto hist = core::ComputeConsumptionHistogram(v);
    benchmark::DoNotOptimize(hist);
  }
}
BENCHMARK(BM_EquiWidthHistogram8760);

void BM_SimpleOls(benchmark::State& state) {
  const std::vector<double> x = RandomSeries(static_cast<size_t>(
                                                 state.range(0)),
                                             3);
  const std::vector<double> y = RandomSeries(static_cast<size_t>(
                                                 state.range(0)),
                                             4);
  for (auto _ : state) {
    auto fit = stats::FitLine(x, y);
    benchmark::DoNotOptimize(fit);
  }
}
BENCHMARK(BM_SimpleOls)->Arg(100)->Arg(1000)->Arg(8760);

void BM_CosinePair8760(benchmark::State& state) {
  const std::vector<double> a = RandomSeries(kHoursPerYear, 5);
  const std::vector<double> b = RandomSeries(kHoursPerYear, 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::CosineSimilarity(a, b));
  }
}
BENCHMARK(BM_CosinePair8760);

void BM_ThreeLineOneConsumer(benchmark::State& state) {
  const std::vector<double> temp =
      datagen::GenerateTemperatureSeries(kHoursPerYear);
  std::vector<double> consumption(kHoursPerYear);
  Rng rng(7);
  for (size_t t = 0; t < consumption.size(); ++t) {
    consumption[t] = 0.4 + 0.1 * std::max(0.0, 12.0 - temp[t]) +
                     0.05 * std::max(0.0, temp[t] - 20.0) +
                     rng.NextDouble() * 0.1;
  }
  for (auto _ : state) {
    auto fit = core::ComputeThreeLine(consumption, temp, 1);
    benchmark::DoNotOptimize(fit);
  }
}
BENCHMARK(BM_ThreeLineOneConsumer);

void BM_ParOneConsumer(benchmark::State& state) {
  const std::vector<double> temp =
      datagen::GenerateTemperatureSeries(kHoursPerYear);
  const std::vector<double> consumption = RandomSeries(kHoursPerYear, 8);
  for (auto _ : state) {
    auto profile = core::ComputeDailyProfile(consumption, temp, 1);
    benchmark::DoNotOptimize(profile);
  }
}
BENCHMARK(BM_ParOneConsumer);

void BM_KMeansProfiles(benchmark::State& state) {
  Rng rng(9);
  std::vector<std::vector<double>> profiles;
  for (int i = 0; i < 200; ++i) {
    std::vector<double> p(24);
    for (double& x : p) x = rng.Uniform(0, 2);
    profiles.push_back(std::move(p));
  }
  for (auto _ : state) {
    auto result = stats::KMeans(profiles, 8);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_KMeansProfiles);

void BM_BTreeInsert(benchmark::State& state) {
  for (auto _ : state) {
    storage::BPlusTree tree;
    Rng rng(10);
    for (int i = 0; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(
          tree.Insert(static_cast<int64_t>(rng.NextUint64() >> 16),
                      static_cast<uint64_t>(i)));
    }
  }
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(100000);

void BM_BTreeLookup(benchmark::State& state) {
  storage::BPlusTree tree;
  for (int64_t i = 0; i < 100000; ++i) {
    (void)tree.Insert(i * 3, static_cast<uint64_t>(i));
  }
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.Lookup(static_cast<int64_t>(rng.UniformInt(300000))));
  }
}
BENCHMARK(BM_BTreeLookup);

void BM_ParseReadingRow(benchmark::State& state) {
  const std::string line = "12345,4821,1.2345,-12.50";
  for (auto _ : state) {
    auto row = storage::ParseReadingRow(line);
    benchmark::DoNotOptimize(row);
  }
}
BENCHMARK(BM_ParseReadingRow);

void BM_TopKSimilarity(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<std::vector<double>> series;
  for (int i = 0; i < n; ++i) {
    series.push_back(RandomSeries(kHoursPerYear, 100 + i));
  }
  std::vector<core::SeriesView> views;
  for (int i = 0; i < n; ++i) views.push_back({i, series[i]});
  for (auto _ : state) {
    auto result = core::ComputeSimilarityTopK(views);
    benchmark::DoNotOptimize(result);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_TopKSimilarity)->Arg(16)->Arg(32)->Arg(64)->Complexity(benchmark::oNSquared);

}  // namespace

BENCHMARK_MAIN();
