// Reproduces Figure 10(a-d): multi-threaded speedup of each algorithm on
// Matlab (parallel shared-nothing instances), MADLib (parallel
// connections) and System C (native parallelism), threads 1..8.
//
// Expected shape (paper, 4-core host): near-linear speedup up to the
// physical core count, diminishing returns beyond (hyper-threads fight
// over FP units). This host's physical core count is printed; expect the
// knee there.
#include <cstdio>
#include <thread>

#include "bench_common.h"
#include "engines/engine_factory.h"

namespace {

using namespace smartmeter;         // NOLINT
using namespace smartmeter::bench;  // NOLINT

int Run(BenchContext& ctx) {
  const double paper_gb = ctx.flags().GetDouble("paper-gb", 5.0);
  const int households = ctx.HouseholdsForPaperGb(paper_gb);
  PrintHeader(
      "Figure 10: speedup vs number of threads (warm start)",
      StringPrintf("%d households (~%.1f paper-GB); host has %u hardware "
                   "threads -- expect the knee there",
                   households, ctx.PaperGbForHouseholds(households),
                   std::thread::hardware_concurrency()));

  const std::vector<int> thread_counts = {1, 2, 4, 8};
  for (core::TaskType task : core::kAllTasks) {
    std::printf("\n-- Figure 10 (%s), speedup relative to 1 thread --\n",
                std::string(core::TaskName(task)).c_str());
    std::vector<std::string> header = {"platform"};
    for (int t : thread_counts) {
      header.push_back(StringPrintf("%d thr", t));
    }
    PrintRow(header);
    PrintDivider(header.size());

    for (engines::EngineKind kind :
         {engines::EngineKind::kMatlab, engines::EngineKind::kMadlib,
          engines::EngineKind::kSystemC}) {
      engines::EngineFactoryOptions factory;
      factory.spool_dir = ctx.SpoolDir("fig10");
      auto engine = engines::MakeEngine(kind, factory);
      auto source = (kind == engines::EngineKind::kMatlab)
                        ? ctx.PartitionedDir(households)
                        : ctx.SingleCsv(households);
      if (!source.ok()) return 1;
      if (!engine->Attach(*source).ok()) return 1;
      if (!engine->WarmUp().ok()) return 1;

      engines::TaskOptions request = engines::TaskOptions::Default(task);
      if (task == core::TaskType::kSimilarity) {
        request.Get<engines::SimilarityTaskOptions>().households =
            std::min(households, ctx.HouseholdsForPaperGb(2.0));
      }
      double base_seconds = 0.0;
      std::vector<std::string> cells = {
          std::string(engines::EngineKindName(kind))};
      for (int threads : thread_counts) {
        engine->SetThreads(threads);
        // Best of three: the scaled-down tasks are fast enough that a
        // single run is noisy on a busy host.
        double best = 0.0;
        for (int rep = 0; rep < 3; ++rep) {
          auto metrics = engine->RunTask(request, nullptr);
          if (!metrics.ok()) {
            std::fprintf(stderr, "%s\n",
                         metrics.status().ToString().c_str());
            return 1;
          }
          if (rep == 0 || metrics->seconds < best) {
            best = metrics->seconds;
          }
        }
        if (threads == 1) base_seconds = best;
        cells.push_back(Cell(best > 0 ? base_seconds / best : 0.0));
      }
      PrintRow(cells);
    }
  }
  std::printf(
      "\nShape to check: speedup rises with threads up to the physical "
      "core count, then flattens.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx(argc, argv, /*default_scale=*/80.0);
  return Run(ctx);
}
