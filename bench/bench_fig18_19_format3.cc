// Reproduces Figures 18 and 19: the third cluster data format -- many
// files, each holding whole households, read through a non-splittable
// input format -- at 100 paper-GB, varying the number of files.
//   Figure 18: execution time vs file count for Hive UDTF (map-only),
//              Hive UDAF (with reduce) and Spark.
//   Figure 19: speedup vs worker nodes at a fixed file count.
//
// Expected shapes (paper): Hive UDTF wins (no reduce step) and is
// insensitive to the file count between 10 and 10,000; Spark's time
// degrades as files multiply (serial driver work per partition, open
// file handles) and at ~100,000 files Spark aborts with "too many open
// files" (reproduced here as an explicit error row).
#include <cstdio>

#include "bench_common.h"
#include "engines/hive_engine.h"
#include "engines/spark_engine.h"

namespace {

using namespace smartmeter;         // NOLINT
using namespace smartmeter::bench;  // NOLINT

int Run(BenchContext& ctx) {
  const double paper_gb = ctx.flags().GetDouble("paper-gb", 100.0);
  const int households = ctx.HouseholdsForPaperGb(paper_gb);
  PrintHeader(
      "Figures 18-19: data format 3 (many whole-household files)",
      StringPrintf("%d households (~%.0f paper-GB); paper varies 10 - "
                   "10,000 files of the 100 GB set",
                   households, paper_gb));

  cluster::ClusterConfig cluster;
  std::vector<int> file_counts = {10, 50, 100, 200};
  for (int& f : file_counts) f = std::min(f, households);

  for (core::TaskType task :
       {core::TaskType::kThreeLine, core::TaskType::kPar,
        core::TaskType::kHistogram}) {
    std::printf("\n-- Figure 18 (%s) --\n",
                std::string(core::TaskName(task)).c_str());
    PrintRow({"files", "hive UDTF (s)", "hive UDAF (s)", "spark (s)"});
    PrintDivider(4);
    for (int files : file_counts) {
      auto source = ctx.WholeFileDir(households, files);
      if (!source.ok()) return 1;
      engines::TaskOptions request = engines::TaskOptions::Default(task);

      engines::HiveEngine::Options udtf_options;
      udtf_options.cluster = cluster;
      udtf_options.format3_style = engines::HiveEngine::Format3Style::kUdtf;
      engines::HiveEngine udtf(udtf_options);
      if (!udtf.Attach(*source).ok()) return 1;
      auto udtf_time = udtf.RunTask(request, nullptr);

      engines::HiveEngine::Options udaf_options;
      udaf_options.cluster = cluster;
      udaf_options.format3_style = engines::HiveEngine::Format3Style::kUdaf;
      engines::HiveEngine udaf(udaf_options);
      if (!udaf.Attach(*source).ok()) return 1;
      auto udaf_time = udaf.RunTask(request, nullptr);

      engines::SparkEngine::Options spark_options;
      spark_options.cluster = cluster;
      engines::SparkEngine spark(spark_options);
      if (!spark.Attach(*source).ok()) return 1;
      auto spark_time = spark.RunTask(request, nullptr);

      if (!udtf_time.ok() || !udaf_time.ok() || !spark_time.ok()) {
        std::fprintf(stderr, "run failed\n");
        return 1;
      }
      PrintRow({CellInt(files), Cell(udtf_time->seconds),
                Cell(udaf_time->seconds), Cell(spark_time->seconds)});
    }
  }

  // The 100,000-file catastrophe: Spark refuses (too many open files).
  {
    engines::SparkEngine::Options options;
    options.cluster = cluster;
    engines::SparkEngine spark(options);
    table::DataSource fake;
    fake.layout = table::DataSource::Layout::kWholeFileDir;
    // The descriptor-count check fires at job submission, before any
    // file is read, so placeholder paths suffice.
    fake.files.assign(100000, "unused");
    std::printf("\n-- 100,000-file probe (Section 5.4.2) --\n");
    auto attach = spark.Attach(fake);
    std::printf("spark @ 100000 files: %s\n",
                attach.ok() ? "unexpectedly ran"
                            : attach.status().ToString().c_str());
  }

  // ---- Figure 19: speedup at a fixed file count -------------------------
  const int files = std::min(100, households);
  auto source = ctx.WholeFileDir(households, files);
  if (!source.ok()) return 1;
  const std::vector<int> node_counts = {4, 8, 12, 16};
  for (core::TaskType task :
       {core::TaskType::kThreeLine, core::TaskType::kPar,
        core::TaskType::kHistogram}) {
    std::printf(
        "\n-- Figure 19 (%s), %d files, speedup relative to 4 nodes --\n",
        std::string(core::TaskName(task)).c_str(), files);
    std::vector<std::string> header = {"engine"};
    for (int n : node_counts) header.push_back(StringPrintf("%d nodes", n));
    PrintRow(header);
    PrintDivider(header.size());
    for (const char* engine_name : {"hive-udtf", "spark"}) {
      std::vector<std::string> cells = {engine_name};
      double base = 0.0;
      for (int nodes : node_counts) {
        cluster::ClusterConfig config;
        config.num_nodes = nodes;
        engines::TaskOptions request = engines::TaskOptions::Default(task);
        double seconds = 0.0;
        if (std::string(engine_name) == "spark") {
          engines::SparkEngine::Options options;
          options.cluster = config;
          engines::SparkEngine engine(options);
          if (!engine.Attach(*source).ok()) return 1;
          auto metrics = engine.RunTask(request, nullptr);
          if (!metrics.ok()) return 1;
          seconds = metrics->seconds;
        } else {
          engines::HiveEngine::Options options;
          options.cluster = config;
          options.format3_style =
              engines::HiveEngine::Format3Style::kUdtf;
          engines::HiveEngine engine(options);
          if (!engine.Attach(*source).ok()) return 1;
          auto metrics = engine.RunTask(request, nullptr);
          if (!metrics.ok()) return 1;
          seconds = metrics->seconds;
        }
        if (nodes == node_counts.front()) base = seconds;
        cells.push_back(Cell(seconds > 0 ? base / seconds : 0.0));
      }
      PrintRow(cells);
    }
  }
  std::printf(
      "\nShapes to check: hive UDTF flat across file counts and fastest; "
      "spark degrades as files grow and\naborts at 100,000 files.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx(argc, argv, /*default_scale=*/1200.0);
  return Run(ctx);
}
