// Ablation (ours, after the paper's reference [18] on meter-data
// quality): how robust are the benchmark's analytics to missing
// readings? Random gaps of growing rate and length are injected into
// every series, repaired by linear interpolation (FillGaps), and the
// 3-line gradients / PAR profiles recomputed. Reports the drift against
// the gap-free ground truth.
#include <cmath>
#include <cstdio>
#include <limits>

#include "bench_common.h"
#include "common/rng.h"
#include "core/par_task.h"
#include "core/three_line_task.h"
#include "timeseries/dataset.h"

namespace {

using namespace smartmeter;         // NOLINT
using namespace smartmeter::bench;  // NOLINT

struct Truth {
  std::vector<core::ThreeLineResult> lines;
  std::vector<core::DailyProfileResult> profiles;
};

int Run(BenchContext& ctx) {
  const int households =
      static_cast<int>(ctx.flags().GetInt("households", 60));
  PrintHeader(
      "Ablation: analytics robustness to missing readings",
      StringPrintf("%d households; gaps injected at the given rate with "
                   "the given mean length, repaired by linear "
                   "interpolation, then 3-line and PAR recomputed",
                   households));

  auto dataset = ctx.GetDataset(households);
  if (!dataset.ok()) return 1;
  const auto& temperature = (*dataset)->temperature();

  Truth truth;
  for (const ConsumerSeries& c : (*dataset)->consumers()) {
    auto lines = core::ComputeThreeLine(c.consumption, temperature,
                                        c.household_id);
    auto profile = core::ComputeDailyProfile(c.consumption, temperature,
                                             c.household_id);
    if (!lines.ok() || !profile.ok()) return 1;
    truth.lines.push_back(std::move(*lines));
    truth.profiles.push_back(std::move(*profile));
  }

  PrintRow({"gap rate", "mean gap (h)", "missing %",
            "heating gradient MAE", "base load MAE", "profile MAE"});
  PrintDivider(6);

  struct Config {
    double rate;  // Probability a gap starts at any hour.
    int mean_len;
  };
  for (const Config& config :
       {Config{0.0005, 2}, Config{0.002, 3}, Config{0.005, 6},
        Config{0.01, 12}, Config{0.02, 24}}) {
    Rng rng(1234);
    double heating_mae = 0.0, base_mae = 0.0, profile_mae = 0.0;
    int64_t missing = 0, total = 0;
    int scored = 0;
    for (size_t i = 0; i < (*dataset)->num_consumers(); ++i) {
      std::vector<double> damaged = (*dataset)->consumer(i).consumption;
      // Inject gaps: geometric lengths around mean_len.
      for (size_t t = 0; t < damaged.size(); ++t) {
        if (rng.NextDouble() < config.rate) {
          int len = 1;
          while (rng.NextDouble() > 1.0 / config.mean_len) ++len;
          for (int g = 0; g < len && t < damaged.size(); ++g, ++t) {
            damaged[t] = std::numeric_limits<double>::quiet_NaN();
            ++missing;
          }
        }
      }
      total += static_cast<int64_t>(damaged.size());
      if (!FillGaps(&damaged).ok()) continue;
      auto lines = core::ComputeThreeLine(
          damaged, temperature, (*dataset)->consumer(i).household_id);
      auto profile = core::ComputeDailyProfile(
          damaged, temperature, (*dataset)->consumer(i).household_id);
      if (!lines.ok() || !profile.ok()) continue;
      heating_mae +=
          std::abs(lines->heating_gradient - truth.lines[i].heating_gradient);
      base_mae += std::abs(lines->base_load - truth.lines[i].base_load);
      double per_hour = 0.0;
      for (int h = 0; h < 24; ++h) {
        per_hour += std::abs(profile->profile[static_cast<size_t>(h)] -
                             truth.profiles[i]
                                 .profile[static_cast<size_t>(h)]);
      }
      profile_mae += per_hour / 24.0;
      ++scored;
    }
    if (scored == 0) continue;
    PrintRow({Cell(config.rate), CellInt(config.mean_len),
              Cell(100.0 * static_cast<double>(missing) /
                   static_cast<double>(total)),
              Cell(heating_mae / scored), Cell(base_mae / scored),
              Cell(profile_mae / scored)});
  }
  std::printf(
      "\nExpected: errors grow smoothly with the missing fraction and "
      "stay small (interpolation repairs short\ngaps well); no task "
      "fails outright -- the data-quality story of the paper's reference "
      "[18].\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx(argc, argv, /*default_scale=*/80.0);
  return Run(ctx);
}
