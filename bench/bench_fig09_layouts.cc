// Reproduces Figure 9 and the Section 5.3.3 text experiment: MADLib with
// the row-per-reading layout (Table 1) versus the array layout (Table 2,
// one row per household with consumption/temperature arrays).
//
// Expected shape (paper): the array layout wins every task -- 3-line
// dropped 19.6 -> 11.3 min, PAR 34.9 -> 30, histogram 7.8 -> 6.8,
// similarity 58.3 -> 40.5 -- but stays far from System C.
#include <cstdio>

#include "bench_common.h"
#include "engines/engine_factory.h"
#include "engines/madlib_engine.h"
#include "engines/systemc_engine.h"

namespace {

using namespace smartmeter;         // NOLINT
using namespace smartmeter::bench;  // NOLINT

int Run(BenchContext& ctx) {
  const double paper_gb = ctx.flags().GetDouble("paper-gb", 5.0);
  const int households = ctx.HouseholdsForPaperGb(paper_gb);
  // The paper ran similarity on a 2 GB subset (6,400 households).
  const int similarity_households =
      std::min(households, ctx.HouseholdsForPaperGb(2.0));
  PrintHeader(
      "Figure 9 / Section 5.3.3: MADLib row layout vs array layout",
      StringPrintf("%d households (~%.1f paper-GB), cold start; paper: "
                   "3line 19.6->11.3 min, PAR 34.9->30, hist 7.8->6.8, "
                   "similarity 58.3->40.5",
                   households, ctx.PaperGbForHouseholds(households)));
  PrintRow({"task", "row layout (s)", "array layout (s)", "row / array",
            "system-c (s)"});
  PrintDivider(5);

  auto source = ctx.SingleCsv(households);
  if (!source.ok()) return 1;

  engines::MadlibEngine row_engine(engines::MadlibEngine::TableLayout::kRow);
  engines::MadlibEngine array_engine(
      engines::MadlibEngine::TableLayout::kArray);
  engines::SystemCEngine systemc(ctx.SpoolDir("fig09"));
  if (!row_engine.Attach(*source).ok()) return 1;
  if (!array_engine.Attach(*source).ok()) return 1;
  if (!systemc.Attach(*source).ok()) return 1;

  for (core::TaskType task : core::kAllTasks) {
    engines::TaskOptions request = engines::TaskOptions::Default(task);
    if (task == core::TaskType::kSimilarity) {
      request.Get<engines::SimilarityTaskOptions>().households =
          similarity_households;
    }
    auto row = row_engine.RunTask(request, nullptr);
    auto array = array_engine.RunTask(request, nullptr);
    auto fast = systemc.RunTask(request, nullptr);
    if (!row.ok() || !array.ok() || !fast.ok()) {
      std::fprintf(stderr, "task failed\n");
      return 1;
    }
    PrintRow({std::string(core::TaskName(task)), Cell(row->seconds),
              Cell(array->seconds),
              Cell(array->seconds > 0 ? row->seconds / array->seconds : 0),
              Cell(fast->seconds)});
  }
  std::printf(
      "\nShape to check: 'row / array' > 1 on every task, yet the array "
      "layout still loses to system-c.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx(argc, argv, /*default_scale=*/80.0);
  return Run(ctx);
}
