#ifndef SMARTMETER_BENCH_BENCH_COMMON_H_
#define SMARTMETER_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/string_util.h"
#include "common/result.h"
#include "datagen/generator.h"
#include "engines/engine.h"
#include "obs/report.h"
#include "timeseries/dataset.h"

namespace smartmeter::bench {

/// The paper's data sizing: 27,300 households of hourly year-long data
/// occupy roughly 10 GB as CSV, i.e. 2,730 households per "paper GB".
inline constexpr double kHouseholdsPerPaperGb = 2730.0;

/// Scaled-down benchmark context shared by every figure binary.
///
/// Flags understood by all benches:
///   --workdir=<dir>   scratch directory (default /tmp/smartmeter-bench)
///   --scale=<f>       scale divisor: 1 "paper GB" is represented by
///                     2730 / f households (default 40, i.e. ~68
///                     households per paper-GB, so the whole suite runs
///                     in minutes on a laptop)
///   --hours=<n>       hours per series (default 8760)
///   --seed=<n>        RNG seed
///   --report=<path>   write an observability JSON report (metrics +
///                     trace spans + per-run timings) on Finish()
class BenchContext {
 public:
  /// `default_scale` is the scale divisor used when --scale is not
  /// given; heavier figures ship larger defaults so the whole suite
  /// stays fast, and every bench prints the paper-equivalent sizes.
  BenchContext(int argc, char** argv, double default_scale = 40.0);

  /// Writes the report on teardown if --report was given and Finish()
  /// was never called explicitly (benches that don't need the status).
  ~BenchContext();

  const FlagParser& flags() const { return flags_; }
  const std::string& workdir() const { return workdir_; }
  int hours() const { return hours_; }
  double scale_divisor() const { return scale_divisor_; }

  /// Households representing `paper_gb` of the paper's data.
  int HouseholdsForPaperGb(double paper_gb) const;

  /// Reverse mapping: paper-equivalent GB for a household count.
  double PaperGbForHouseholds(int households) const;

  /// Returns a realistic dataset of exactly `households` consumers,
  /// produced the way the paper produced its large data sets: a small
  /// "real" seed plus the Section 4 generator. Cached per process.
  Result<const MeterDataset*> GetDataset(int households);

  /// Materializes the given layout of the first `households` consumers
  /// under the workdir; re-written only when absent. Returns the source
  /// descriptor for the engines.
  Result<table::DataSource> SingleCsv(int households);
  Result<table::DataSource> PartitionedDir(int households);
  Result<table::DataSource> HouseholdLines(int households);
  Result<table::DataSource> WholeFileDir(int households, int num_files);

  /// Per-bench scratch dir for engine spools.
  std::string SpoolDir(const std::string& tag) const;

  /// Observability report accumulating every run of this bench. Pass
  /// `&ctx.report()` as RunSpec::report to record runs automatically.
  obs::BenchReport& report() { return report_; }

  /// True when --report=<path> was given.
  bool report_requested() const { return !report_path_.empty(); }

  /// Captures the global metrics registry + trace buffer into the
  /// report and writes it to the --report path (no-op without the
  /// flag). Called automatically from the destructor; call explicitly
  /// when the bench wants to act on a write failure.
  Status Finish();

 private:
  Result<MeterDataset> BuildDataset(int households);

  FlagParser flags_;
  std::string workdir_;
  std::string report_path_;
  bool report_written_ = false;
  obs::BenchReport report_;
  int hours_;
  double scale_divisor_;
  uint64_t seed_;
  // Cache of the largest dataset built so far; subsets are views of it.
  MeterDataset cache_;
  MeterDataset subset_;
};

// ---------------------------------------------------------------------------
// Output helpers: every bench prints GitHub-flavoured tables so the
// output is directly pasteable into EXPERIMENTS.md.
// ---------------------------------------------------------------------------

/// Prints "== <title> ==" plus a one-line provenance note.
void PrintHeader(const std::string& title, const std::string& note);

/// Prints a markdown table row/divider from cells.
void PrintRow(const std::vector<std::string>& cells);
void PrintDivider(size_t columns);

/// Formats seconds in a stable "%.3f" form for table cells.
std::string Cell(double value);
std::string CellInt(int64_t value);

}  // namespace smartmeter::bench

#endif  // SMARTMETER_BENCH_BENCH_COMMON_H_
