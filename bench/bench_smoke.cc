// CI smoke benchmark: one tiny histogram run per engine, emitting the
// observability JSON report and gating on a committed baseline.
//
// Flags (on top of the common bench flags):
//   --baseline=<path>   BENCH_baseline.json to compare against (skip
//                       the gate when empty)
//   --tolerance=<f>     allowed relative task_seconds regression
//                       (default 0.30, i.e. fail when 30% slower)
//
// Typical CI invocation:
//   bench_smoke --hours=240 --report=bench_report.json
//       --baseline=../bench/BENCH_baseline.json
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "engines/benchmark_runner.h"
#include "obs/report.h"
#include "simd/simd.h"
#include "storage/column_store.h"
#include "storage/scan_scope.h"
#include "table/columnar_cache.h"
#include "table/table_reader.h"
#include "timeseries/calendar.h"

namespace smartmeter::bench {
namespace {

struct SmokeCase {
  engines::EngineKind kind;
  /// Matlab's single-CSV ingest is quadratic in file size, so the smoke
  /// run feeds it the partitioned layout; everything else reads the
  /// single CSV.
  bool partitioned;
};

int RunSmoke(int argc, char** argv) {
  BenchContext ctx(argc, argv, /*default_scale=*/400.0);
  const std::string baseline_path = ctx.flags().GetString("baseline", "");
  const double tolerance = ctx.flags().GetDouble("tolerance", 0.30);
  const int households = 12;

  const std::vector<SmokeCase> cases = {
      {engines::EngineKind::kSystemC, false},
      {engines::EngineKind::kMatlab, true},
      {engines::EngineKind::kMadlib, false},
      {engines::EngineKind::kSpark, false},
      {engines::EngineKind::kHive, false},
  };

  PrintHeader("bench_smoke",
              "one tiny histogram run per engine; gates CI on the "
              "committed baseline");
  PrintRow({"engine", "layout", "load s", "task s", "simulated"});
  PrintDivider(5);

  for (const SmokeCase& c : cases) {
    engines::RunSpec spec;
    spec.kind = c.kind;
    spec.factory.spool_dir = ctx.SpoolDir("smoke");
    spec.factory.cluster.num_nodes = 4;
    spec.factory.cluster.slots_per_node = 2;
    spec.options = engines::TaskOptions::Default(core::TaskType::kHistogram);
    spec.threads = 2;
    spec.report = &ctx.report();
    auto source = c.partitioned ? ctx.PartitionedDir(households)
                                : ctx.SingleCsv(households);
    if (!source.ok()) {
      std::fprintf(stderr, "data materialization failed: %s\n",
                   source.status().ToString().c_str());
      return 1;
    }
    spec.source = *source;
    auto run = engines::RunBenchmark(spec);
    if (!run.ok()) {
      std::fprintf(stderr, "%s failed: %s\n",
                   std::string(engines::EngineKindName(c.kind)).c_str(),
                   run.status().ToString().c_str());
      return 1;
    }
    PrintRow({std::string(engines::EngineKindName(c.kind)),
              c.partitioned ? "partitioned" : "single-csv",
              Cell(run->attach_seconds), Cell(run->task_seconds),
              run->simulated ? "yes" : "no"});

    // Plan-IR gate: every engine run must surface per-stage timing rows
    // that account for the task time (wall-clock rows tolerate scheduler
    // glue; simulated rows are exact, so the slack only admits noise).
    if (run->stages.empty()) {
      std::fprintf(stderr, "STAGE GATE %s: run report has no plan stages\n",
                   std::string(engines::EngineKindName(c.kind)).c_str());
      return 1;
    }
    double stage_sum = 0.0;
    for (const exec::StageTiming& stage : run->stages) {
      stage_sum += stage.seconds;
    }
    const double slack = 0.30 * run->task_seconds + 0.05;
    if (stage_sum < run->task_seconds - slack ||
        stage_sum > run->task_seconds + slack) {
      std::fprintf(stderr,
                   "STAGE GATE %s: stage seconds %.6f do not account for "
                   "task seconds %.6f (slack %.6f)\n",
                   std::string(engines::EngineKindName(c.kind)).c_str(),
                   stage_sum, run->task_seconds, slack);
      return 1;
    }
  }

  // Data-plane gate: a warm scan of the columnar cache must beat a cold
  // CSV parse of the same source (the shared Figure 6 cold→warm story).
  // Both runs land in the report so the counters and timings are
  // inspectable in CI artifacts.
  {
    auto source = ctx.SingleCsv(households);
    if (!source.ok()) {
      std::fprintf(stderr, "data materialization failed: %s\n",
                   source.status().ToString().c_str());
      return 1;
    }
    table::ColumnarCache cache(ctx.SpoolDir("smoke-cache"));

    Stopwatch cold_watch;
    auto cold = cache.OpenOrBuild(*source);  // Miss: parse + build + mmap.
    const double cold_seconds = cold_watch.ElapsedSeconds();
    if (!cold.ok()) {
      std::fprintf(stderr, "cache cold build failed: %s\n",
                   cold.status().ToString().c_str());
      return 1;
    }

    Stopwatch warm_watch;
    auto warm = cache.OpenOrBuild(*source);  // Hit: mmap only.
    auto warm_batch = warm.ok() ? (*warm)->NewBatch()
                                : Result<table::ColumnarBatch>(warm.status());
    const double warm_seconds = warm_watch.ElapsedSeconds();
    if (!warm_batch.ok()) {
      std::fprintf(stderr, "cache warm scan failed: %s\n",
                   warm_batch.status().ToString().c_str());
      return 1;
    }

    obs::RunRecord cold_run;
    cold_run.engine = "data-plane";
    cold_run.task = "cache-cold";
    cold_run.layout = "single-csv";
    cold_run.task_seconds = cold_seconds;
    ctx.report().AddRun(cold_run);
    obs::RunRecord warm_run;
    warm_run.engine = "data-plane";
    warm_run.task = "cache-warm";
    warm_run.layout = "single-csv";
    warm_run.warm = true;
    warm_run.task_seconds = warm_seconds;
    ctx.report().AddRun(warm_run);
    PrintRow({"data-plane", "cache cold/warm", Cell(cold_seconds),
              Cell(warm_seconds), "no"});

    if (warm_seconds >= cold_seconds) {
      std::fprintf(stderr,
                   "DATA-PLANE REGRESSION: warm cache scan (%.6fs) did not "
                   "beat cold CSV parse (%.6fs)\n",
                   warm_seconds, cold_seconds);
      return 1;
    }
  }

  // Pruned-scan gate: a single-household scoped scan over an SMCOLV2
  // rendering of the smoke dataset must decode strictly fewer blocks
  // than a full scan. The gate is block-count based, not timing based,
  // so scheduler noise on loaded CI hosts cannot flake it.
  {
    auto source = ctx.SingleCsv(households);
    if (!source.ok()) {
      std::fprintf(stderr, "data materialization failed: %s\n",
                   source.status().ToString().c_str());
      return 1;
    }
    auto dataset = table::ReadDatasetFromSource(*source);
    if (!dataset.ok()) {
      std::fprintf(stderr, "smoke dataset parse failed: %s\n",
                   dataset.status().ToString().c_str());
      return 1;
    }
    const std::string spool = ctx.SpoolDir("smoke-smcol");
    std::error_code ec;
    std::filesystem::create_directories(spool, ec);
    const std::string v2_path = spool + "/data.smcol";
    // Small blocks so even the smoke-sized table spans enough blocks for
    // pruning to be observable.
    if (Status st =
            storage::ColumnFileWriter::WriteFile(*dataset, v2_path,
                                                 /*block_values=*/256);
        !st.ok()) {
      std::fprintf(stderr, "SMCOLV2 write failed: %s\n", st.ToString().c_str());
      return 1;
    }
    table::ColumnFileReader reader(v2_path);
    if (Status st = reader.Open(); !st.ok()) {
      std::fprintf(stderr, "SMCOLV2 open failed: %s\n", st.ToString().c_str());
      return 1;
    }
    storage::ScanScope scope;
    scope.row_begin = static_cast<size_t>(households) / 2;
    scope.row_count = 1;
    Stopwatch scoped_watch;
    auto scoped = reader.NewScopedBatch(scope);
    const double scoped_seconds = scoped_watch.ElapsedSeconds();
    if (!scoped.ok()) {
      std::fprintf(stderr, "scoped SMCOLV2 scan failed: %s\n",
                   scoped.status().ToString().c_str());
      return 1;
    }
    obs::RunRecord pruned_run;
    pruned_run.engine = "data-plane";
    pruned_run.task = "pruned-scan";
    pruned_run.layout = "smcolv2";
    pruned_run.task_seconds = scoped_seconds;
    pruned_run.bytes_scanned = scoped->stats.bytes_decoded;
    pruned_run.blocks_decoded = scoped->stats.blocks_decoded;
    pruned_run.blocks_pruned = scoped->stats.blocks_pruned;
    ctx.report().AddRun(pruned_run);
    PrintRow({"data-plane", "pruned scan", Cell(scoped_seconds),
              CellInt(scoped->stats.blocks_decoded),
              CellInt(scoped->stats.blocks_pruned)});
    if (scoped->stats.blocks_pruned <= 0 ||
        scoped->stats.blocks_decoded >= scoped->stats.blocks_total) {
      std::fprintf(stderr,
                   "PRUNED-SCAN GATE: scoped scan decoded %lld of %lld "
                   "blocks (pruned %lld); the block index did no work\n",
                   static_cast<long long>(scoped->stats.blocks_decoded),
                   static_cast<long long>(scoped->stats.blocks_total),
                   static_cast<long long>(scoped->stats.blocks_pruned));
      return 1;
    }
  }

  // SIMD gate: the dispatched kernels must beat their scalar twins when a
  // vector level is active. The 1.2x floor is deliberately below the
  // steady-state speedups (see EXPERIMENTS.md) so scheduler noise on
  // loaded CI hosts does not flake the job; on a scalar-only host (or an
  // SM_DISABLE_SIMD build) the gate is informational only.
  {
    const simd::Level level = simd::ActiveLevel();
    const size_t n = static_cast<size_t>(kHoursPerYear);
    Rng rng(41);
    std::vector<double> x(n);
    std::vector<double> y(n);
    for (size_t i = 0; i < n; ++i) {
      x[i] = rng.Uniform(0.0, 5.0);
      y[i] = rng.Uniform(0.0, 5.0);
    }
    std::string text;
    for (int r = 0; r < 2048; ++r) {
      text += "12345,4821,1.2345,-12.50\n";
    }

    // Best-of-three timing of `reps` calls keeps the one-core CI host
    // from turning a single preemption into a gate failure.
    const auto time_best = [](int reps, const auto& body) {
      double best = 1e300;
      for (int trial = 0; trial < 3; ++trial) {
        Stopwatch watch;
        for (int i = 0; i < reps; ++i) body();
        best = std::min(best, watch.ElapsedSeconds());
      }
      return best;
    };

    struct Panel {
      const char* task;
      double vector_seconds;
      double scalar_seconds;
    };
    std::vector<Panel> panels;

    // Volatile sinks keep the optimizer from eliding the timed calls.
    volatile double sink = 0.0;
    const auto dot_body = [&] { sink = sink + simd::Dot(x, y); };
    std::vector<int64_t> counts(32);
    const auto hist_body = [&] {
      std::fill(counts.begin(), counts.end(), 0);
      simd::HistogramBin(x, 0.0, 5.0 / 32.0, counts);
      sink = sink + static_cast<double>(counts[0]);
    };
    const auto count_body = [&] {
      sink = sink + static_cast<double>(simd::CountByte(text, ','));
    };

    const auto run_panel = [&](const char* task, int reps,
                               const auto& body) {
      const double vec = time_best(reps, body);
      double scal = vec;
      {
        const simd::ScopedLevel guard(simd::Level::kScalar);
        scal = time_best(reps, body);
      }
      panels.push_back({task, vec, scal});
    };
    run_panel("simd-dot", 2000, dot_body);
    run_panel("simd-histogram", 2000, hist_body);
    run_panel("simd-count-byte", 2000, count_body);

    int fast_enough = 0;
    for (const Panel& p : panels) {
      const double speedup =
          p.vector_seconds > 0.0 ? p.scalar_seconds / p.vector_seconds : 1.0;
      if (speedup >= 1.2) ++fast_enough;
      obs::RunRecord rec;
      rec.engine = "simd";
      rec.task = p.task;
      rec.layout = std::string(simd::LevelName(level));
      rec.task_seconds = p.vector_seconds;
      ctx.report().AddRun(rec);
      PrintRow({"simd", p.task, Cell(p.scalar_seconds),
                Cell(p.vector_seconds),
                std::string(simd::LevelName(level))});
    }
    if (level != simd::Level::kScalar && fast_enough < 2) {
      std::fprintf(stderr,
                   "SIMD GATE: only %d of %zu kernels reached 1.2x over "
                   "scalar at level %s\n",
                   fast_enough, panels.size(),
                   std::string(simd::LevelName(level)).c_str());
      return 1;
    }
  }

  if (Status st = ctx.Finish(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  if (baseline_path.empty()) {
    std::printf("\nno --baseline given; skipping regression gate\n");
    return 0;
  }

  obs::BenchReport baseline;
  std::string error;
  if (!obs::BenchReport::ReadFile(baseline_path, &baseline, &error)) {
    std::fprintf(stderr, "cannot read baseline %s: %s\n",
                 baseline_path.c_str(), error.c_str());
    return 1;
  }

  int failures = 0;
  for (const obs::RunRecord& run : ctx.report().runs()) {
    const obs::RunRecord* base = nullptr;
    for (const obs::RunRecord& b : baseline.runs()) {
      if (b.engine == run.engine && b.task == run.task &&
          b.layout == run.layout) {
        base = &b;
        break;
      }
    }
    if (base == nullptr) {
      std::printf("no baseline for %s/%s/%s; skipping\n",
                  run.engine.c_str(), run.task.c_str(), run.layout.c_str());
      continue;
    }
    const double limit = base->task_seconds * (1.0 + tolerance);
    if (run.task_seconds > limit) {
      std::fprintf(stderr,
                   "REGRESSION %s/%s/%s: task %.3fs > limit %.3fs "
                   "(baseline %.3fs, tolerance %.0f%%)\n",
                   run.engine.c_str(), run.task.c_str(), run.layout.c_str(),
                   run.task_seconds, limit, base->task_seconds,
                   tolerance * 100.0);
      ++failures;
    } else {
      std::printf("ok %s/%s/%s: task %.3fs within limit %.3fs\n",
                  run.engine.c_str(), run.task.c_str(), run.layout.c_str(),
                  run.task_seconds, limit);
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "\n%d regression(s) vs %s\n", failures,
                 baseline_path.c_str());
    return 1;
  }
  std::printf("\nall engines within %.0f%% of baseline\n",
              tolerance * 100.0);
  return 0;
}

}  // namespace
}  // namespace smartmeter::bench

int main(int argc, char** argv) {
  return smartmeter::bench::RunSmoke(argc, argv);
}
