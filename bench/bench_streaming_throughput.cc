// Ablation (ours): throughput of the streaming alert pipeline (the
// paper's Section 6 future-work application). Measures readings/second
// through the StreamProcessor for each detector configuration, and the
// alert counts on a stream with injected anomalies -- the capacity
// question a utility would ask before deploying real-time alerts.
#include <cstdio>
#include <memory>

#include "bench_common.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/par_task.h"
#include "streaming/detectors.h"
#include "streaming/stream_processor.h"
#include "timeseries/calendar.h"

namespace {

using namespace smartmeter;         // NOLINT
using namespace smartmeter::bench;  // NOLINT

int Run(BenchContext& ctx) {
  const int households =
      static_cast<int>(ctx.flags().GetInt("households", 50));
  PrintHeader(
      "Ablation: streaming alert pipeline throughput",
      StringPrintf("%d households x 1 year of hourly readings replayed "
                   "through the stream processor; ~1 anomaly per "
                   "household per month injected",
                   households));

  auto dataset = ctx.GetDataset(households);
  if (!dataset.ok()) return 1;
  const auto& temperature = (*dataset)->temperature();

  struct Config {
    const char* name;
    bool ewma, spike, flatline, profile;
  };
  const Config configs[] = {
      {"ewma only", true, false, false, false},
      {"spike only", false, true, false, false},
      {"ewma+spike+flatline", true, true, true, false},
      {"all + per-household profile", true, true, true, true},
  };

  PrintRow({"detectors", "readings/s", "alerts", "injected", "run (s)"});
  PrintDivider(5);
  for (const Config& config : configs) {
    streaming::StreamProcessor processor;
    if (config.ewma) {
      processor.AddDetectorPrototype(
          std::make_unique<streaming::EwmaDetector>());
    }
    if (config.spike) {
      processor.AddDetectorPrototype(
          std::make_unique<streaming::SpikeDetector>());
    }
    if (config.flatline) {
      processor.AddDetectorPrototype(
          std::make_unique<streaming::FlatlineDetector>());
    }
    if (config.profile) {
      for (const ConsumerSeries& c : (*dataset)->consumers()) {
        auto model = core::ComputeDailyProfile(c.consumption, temperature,
                                               c.household_id);
        if (!model.ok()) continue;
        streaming::ProfileDetector::Options options;
        options.relative_tolerance = 3.0;
        options.min_band = 1.5;
        processor.AddHouseholdDetector(
            c.household_id, std::make_unique<streaming::ProfileDetector>(
                                *model, options));
      }
    }

    Rng rng(11);
    int64_t injected = 0;
    Stopwatch clock;
    for (int h = 0; h < kHoursPerYear; ++h) {
      for (const ConsumerSeries& c : (*dataset)->consumers()) {
        double kwh = c.consumption[static_cast<size_t>(h)];
        // ~1 anomaly per household-month.
        if (rng.UniformInt(24 * 30) == 0) {
          kwh += 10.0 + rng.NextDouble() * 5.0;
          ++injected;
        }
        if (!processor
                 .Process({c.household_id, h, kwh,
                           temperature[static_cast<size_t>(h)]})
                 .ok()) {
          return 1;
        }
      }
    }
    const double seconds = clock.ElapsedSeconds();
    const double throughput =
        seconds > 0 ? static_cast<double>(processor.readings_processed()) /
                          seconds
                    : 0.0;
    PrintRow({config.name, Cell(throughput),
              CellInt(processor.alerts_raised()), CellInt(injected),
              Cell(seconds)});
  }
  std::printf(
      "\nExpected: throughput in the millions of readings per second per "
      "core (a 27k-household utility emits\n~8 readings/second, so one "
      "core covers whole cities); alert counts scale with injected "
      "anomalies.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx(argc, argv, /*default_scale=*/80.0);
  return Run(ctx);
}
