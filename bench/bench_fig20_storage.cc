// Storage-format benchmark (SMCOLV1 vs SMCOLV2): compression ratio,
// decode throughput, and the selectivity-vs-latency curve of the block
// index, over a deterministic cached large tier.
//
// Flags (on top of the common bench flags):
//   --tier_households=<n>   households in the tier (default 100000; CI
//                           caches the generated file by its spec name)
//   --tier_hours=<n>        hours per series (default 720)
//   --gate                  enforce the acceptance gates (compression
//                           <= 0.5x, routed query decodes < 5% of
//                           blocks) and exit nonzero on failure
//
// Typical invocations:
//   bench_fig20_storage                            # full local tier
//   bench_fig20_storage --tier_households=2000 --tier_hours=168 --gate
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "datagen/tier.h"
#include "engines/benchmark_runner.h"
#include "obs/report.h"
#include "storage/column_store.h"
#include "storage/scan_scope.h"
#include "table/data_source.h"
#include "table/table_reader.h"

namespace smartmeter::bench {
namespace {

int64_t FileBytes(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<int64_t>(size);
}

void AddStorageRun(BenchContext* ctx, const std::string& task,
                   const std::string& layout, double seconds,
                   const storage::ScanStats& stats, double ratio) {
  obs::RunRecord rec;
  rec.engine = "storage";
  rec.task = task;
  rec.layout = layout;
  rec.task_seconds = seconds;
  rec.bytes_scanned = stats.bytes_decoded;
  rec.blocks_decoded = stats.blocks_decoded;
  rec.blocks_pruned = stats.blocks_pruned;
  rec.compression_ratio = ratio;
  ctx->report().AddRun(rec);
}

int RunStorageBench(int argc, char** argv) {
  BenchContext ctx(argc, argv);
  datagen::TierSpec spec;
  spec.households =
      static_cast<int>(ctx.flags().GetInt("tier_households", 100000));
  spec.hours = static_cast<int>(ctx.flags().GetInt("tier_hours", 720));
  const bool gate = ctx.flags().GetBool("gate", false);
  const std::string tier_dir = ctx.workdir() + "/tiers";

  PrintHeader("bench_fig20_storage",
              StringPrintf("SMCOLV1 vs SMCOLV2 over a %d x %dh tier "
                           "(cached under %s)",
                           spec.households, spec.hours, tier_dir.c_str()));

  // -- Tier materialization (cached by spec name) ------------------------
  spec.format = 1;
  Stopwatch v1_watch;
  auto v1_path = datagen::EnsureTierColumnFile(spec, tier_dir);
  const double v1_gen_seconds = v1_watch.ElapsedSeconds();
  spec.format = 2;
  Stopwatch v2_watch;
  auto v2_path = datagen::EnsureTierColumnFile(spec, tier_dir);
  const double v2_gen_seconds = v2_watch.ElapsedSeconds();
  if (!v1_path.ok() || !v2_path.ok()) {
    std::fprintf(stderr, "tier generation failed: %s\n",
                 (v1_path.ok() ? v2_path.status() : v1_path.status())
                     .ToString()
                     .c_str());
    return 1;
  }
  const int64_t v1_bytes = FileBytes(*v1_path);
  const int64_t v2_bytes = FileBytes(*v2_path);
  const double compression =
      v1_bytes > 0 ? static_cast<double>(v2_bytes) /
                         static_cast<double>(v1_bytes)
                   : 0.0;

  PrintRow({"format", "file MB", "generate s", "ratio vs v1"});
  PrintDivider(4);
  PrintRow({"SMCOLV1", Cell(static_cast<double>(v1_bytes) / (1 << 20)),
            Cell(v1_gen_seconds), Cell(1.0)});
  PrintRow({"SMCOLV2", Cell(static_cast<double>(v2_bytes) / (1 << 20)),
            Cell(v2_gen_seconds), Cell(compression)});

  // -- Decode throughput -------------------------------------------------
  table::ColumnFileReader reader(*v2_path);
  Stopwatch decode_watch;
  if (Status st = reader.Open(); !st.ok()) {
    std::fprintf(stderr, "SMCOLV2 open failed: %s\n", st.ToString().c_str());
    return 1;
  }
  const double decode_seconds = decode_watch.ElapsedSeconds();
  const storage::ScanStats& open_stats = reader.open_stats();
  const double decoded_mb =
      static_cast<double>(open_stats.bytes_decoded) / (1 << 20);
  std::printf("\ndecode throughput: %.1f MB of values in %.3fs "
              "(%.0f MB/s, %zu blocks)\n",
              decoded_mb, decode_seconds,
              decode_seconds > 0.0 ? decoded_mb / decode_seconds : 0.0,
              static_cast<size_t>(open_stats.blocks_decoded));
  AddStorageRun(&ctx, "decode-all", "smcolv2", decode_seconds, open_stats,
                compression);

  // -- Selectivity vs latency --------------------------------------------
  std::printf("\n");
  PrintRow({"selectivity", "rows", "latency s", "blocks dec", "blocks pr"});
  PrintDivider(5);
  storage::ScanStats routed;  // The single-household row, kept for the gate.
  const double selectivities[] = {1.0, 0.10, 0.01, 0.0};
  for (double sel : selectivities) {
    const size_t rows =
        sel == 0.0 ? 1
                   : static_cast<size_t>(
                         static_cast<double>(spec.households) * sel);
    storage::ScanScope scope;
    // Scope the middle of the table so pruning has blocks on both sides.
    scope.row_begin = (static_cast<size_t>(spec.households) - rows) / 2;
    scope.row_count = rows;
    Stopwatch watch;
    auto scoped = reader.NewScopedBatch(scope);
    const double seconds = watch.ElapsedSeconds();
    if (!scoped.ok()) {
      std::fprintf(stderr, "scoped decode failed: %s\n",
                   scoped.status().ToString().c_str());
      return 1;
    }
    if (sel == 0.0) routed = scoped->stats;
    const std::string label =
        sel == 0.0 ? "1 household" : StringPrintf("%.0f%%", sel * 100.0);
    PrintRow({label, CellInt(static_cast<int64_t>(rows)), Cell(seconds),
              CellInt(scoped->stats.blocks_decoded),
              CellInt(scoped->stats.blocks_pruned)});
    AddStorageRun(&ctx, "scoped-scan-" + label, "smcolv2", seconds,
                  scoped->stats, compression);
  }

  // -- Routed single-household query through a real engine plan ----------
  {
    engines::RunSpec run_spec;
    run_spec.kind = engines::EngineKind::kSystemC;
    run_spec.factory.spool_dir = ctx.SpoolDir("fig20");
    run_spec.options =
        engines::TaskOptions::Default(core::TaskType::kHistogram);
    run_spec.options.set_scope({static_cast<size_t>(spec.households) / 2, 1});
    auto source = table::DataSource::ColumnFile(*v2_path);
    if (!source.ok()) {
      std::fprintf(stderr, "bad column-file source: %s\n",
                   source.status().ToString().c_str());
      return 1;
    }
    run_spec.source = *source;
    run_spec.report = &ctx.report();
    auto run = engines::RunBenchmark(run_spec);
    if (!run.ok()) {
      std::fprintf(stderr, "routed query failed: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    std::printf("\nrouted single-household query: %.4fs, %lld of %lld "
                "blocks decoded\n",
                run->task_seconds,
                static_cast<long long>(run->scan.blocks_decoded),
                static_cast<long long>(run->scan.blocks_total));
    routed = run->scan;
  }

  if (Status st = ctx.Finish(); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  if (!gate) return 0;
  int failures = 0;
  if (compression > 0.5) {
    std::fprintf(stderr,
                 "STORAGE GATE: SMCOLV2 is %.2fx of SMCOLV1 (must be "
                 "<= 0.50x)\n",
                 compression);
    ++failures;
  }
  if (routed.blocks_total <= 0 ||
      routed.blocks_decoded * 20 >= routed.blocks_total) {
    std::fprintf(stderr,
                 "STORAGE GATE: routed query decoded %lld of %lld blocks "
                 "(must be < 5%%)\n",
                 static_cast<long long>(routed.blocks_decoded),
                 static_cast<long long>(routed.blocks_total));
    ++failures;
  }
  if (failures > 0) return 1;
  std::printf("storage gates passed: compression %.2fx, routed decode "
              "%lld/%lld blocks\n",
              compression, static_cast<long long>(routed.blocks_decoded),
              static_cast<long long>(routed.blocks_total));
  return 0;
}

}  // namespace
}  // namespace smartmeter::bench

int main(int argc, char** argv) {
  return smartmeter::bench::RunStorageBench(argc, argv);
}
