// Reproduces Figure 4: time to load the real data set into Matlab,
// MADLib/PostgreSQL and System C, with partitioned (one file per
// consumer) and un-partitioned (one big file) inputs.
//
// Expected shape (paper): MADLib slowest by far (per-tuple inserts +
// index maintenance), bulk-loading one big CSV faster than many small
// files; System C fast and insensitive to file count; Matlab performs no
// load at all -- its single bar is the cost of splitting the big file
// into per-consumer files.
#include <cstdio>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "engines/engine_factory.h"
#include "storage/csv.h"

namespace {

using namespace smartmeter;        // NOLINT
using namespace smartmeter::bench;  // NOLINT

int Run(BenchContext& ctx) {
  const double paper_gb = ctx.flags().GetDouble("paper-gb", 5.0);
  const int households = ctx.HouseholdsForPaperGb(paper_gb);
  PrintHeader(
      "Figure 4: data loading times, partitioned vs un-partitioned",
      StringPrintf("%d households (~%.1f paper-GB at scale %.0f); paper "
                   "used 10 GB / 27,300 households",
                   households, ctx.PaperGbForHouseholds(households),
                   ctx.scale_divisor()));

  auto single = ctx.SingleCsv(households);
  auto part = ctx.PartitionedDir(households);
  if (!single.ok() || !part.ok()) {
    std::fprintf(stderr, "data materialization failed\n");
    return 1;
  }

  PrintRow({"platform", "partitioned (s)", "un-partitioned (s)"});
  PrintDivider(3);

  // Matlab: no load; its bar is the file-split time. Measure a fresh
  // split into a throwaway directory.
  {
    auto ds = ctx.GetDataset(households);
    if (!ds.ok()) return 1;
    Stopwatch split_clock;
    auto split = storage::WritePartitionedCsv(
        **ds, ctx.workdir() + "/fig04_split_scratch");
    if (!split.ok()) return 1;
    const double split_seconds = split_clock.ElapsedSeconds();
    PrintRow({"matlab (file split only)", Cell(split_seconds), "n/a"});
  }

  for (engines::EngineKind kind :
       {engines::EngineKind::kMadlib, engines::EngineKind::kSystemC}) {
    engines::EngineFactoryOptions factory;
    factory.spool_dir = ctx.SpoolDir("fig04");
    double part_seconds = 0.0, single_seconds = 0.0;
    {
      auto engine = engines::MakeEngine(kind, factory);
      auto attach = engine->Attach(*part);
      if (!attach.ok()) {
        std::fprintf(stderr, "%s\n", attach.status().ToString().c_str());
        return 1;
      }
      part_seconds = *attach;
    }
    {
      auto engine = engines::MakeEngine(kind, factory);
      auto attach = engine->Attach(*single);
      if (!attach.ok()) {
        std::fprintf(stderr, "%s\n", attach.status().ToString().c_str());
        return 1;
      }
      single_seconds = *attach;
    }
    PrintRow({std::string(engines::EngineKindName(kind)),
              Cell(part_seconds), Cell(single_seconds)});
  }
  std::printf(
      "\nShape to check against the paper: MADLib slowest (and slower on "
      "many small files),\nSystem C fast either way, Matlab pays only the "
      "split.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  BenchContext ctx(argc, argv, /*default_scale=*/80.0);
  return Run(ctx);
}
