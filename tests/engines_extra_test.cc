// Additional engine behaviours: reconfiguration, unattached use, warm
// benchmark-runner paths, and cluster scaling direction.
#include <filesystem>

#include <gtest/gtest.h>

#include "datagen/seed_generator.h"
#include "engines/benchmark_runner.h"
#include "engines/hive_engine.h"
#include "engines/madlib_engine.h"
#include "engines/matlab_engine.h"
#include "engines/spark_engine.h"
#include "engines/systemc_engine.h"
#include "storage/csv.h"
#include "timeseries/calendar.h"

namespace smartmeter::engines {
namespace {

using table::DataSource;

namespace fs = std::filesystem;

class EnginesExtraTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new fs::path(fs::path(::testing::TempDir()) /
                        "engines_extra_test");
    fs::create_directories(*dir_);
    datagen::SeedGeneratorOptions options;
    options.num_households = 10;
    options.hours = kHoursPerYear;
    options.seed = 77;
    dataset_ = new MeterDataset(*datagen::GenerateSeedDataset(options));
    single_csv_ = (*dir_ / "data.csv").string();
    ASSERT_TRUE(storage::WriteReadingsCsv(*dataset_, single_csv_).ok());
  }
  static void TearDownTestSuite() {
    std::error_code ec;
    fs::remove_all(*dir_, ec);
    delete dataset_;
    delete dir_;
  }

  static DataSource Source() { return *DataSource::SingleCsv(single_csv_); }

  static fs::path* dir_;
  static MeterDataset* dataset_;
  static std::string single_csv_;
};

fs::path* EnginesExtraTest::dir_ = nullptr;
MeterDataset* EnginesExtraTest::dataset_ = nullptr;
std::string EnginesExtraTest::single_csv_;

TEST_F(EnginesExtraTest, RunBeforeAttachFails) {
  const TaskOptions options =
      TaskOptions::Default(core::TaskType::kHistogram);
  SystemCEngine systemc((*dir_ / "spool_unattached").string());
  EXPECT_FALSE(systemc.RunTask(options, nullptr).ok());
  HiveEngine hive(HiveEngine::Options{});
  EXPECT_FALSE(hive.RunTask(options, nullptr).ok());
  SparkEngine spark(SparkEngine::Options{});
  EXPECT_FALSE(spark.RunTask(options, nullptr).ok());
}

TEST_F(EnginesExtraTest, SetClusterConfigKeepsResultsChangesTime) {
  HiveEngine::Options options;
  options.cluster.num_nodes = 2;
  options.cluster.slots_per_node = 2;
  options.block_bytes = 16 << 10;
  HiveEngine engine(options);
  ASSERT_TRUE(engine.Attach(Source()).ok());
  const TaskOptions request =
      TaskOptions::Default(core::TaskType::kHistogram);
  TaskResultSet small_results;
  auto small = engine.RunTask(request, &small_results);
  ASSERT_TRUE(small.ok());

  cluster::ClusterConfig bigger;
  bigger.num_nodes = 16;
  bigger.slots_per_node = 12;
  engine.SetClusterConfig(bigger);
  TaskResultSet big_results;
  auto big = engine.RunTask(request, &big_results);
  ASSERT_TRUE(big.ok());

  // Same analytics, faster simulated wall-clock on the bigger cluster.
  const auto& small_hists = small_results.Get<core::HistogramResult>();
  const auto& big_hists = big_results.Get<core::HistogramResult>();
  ASSERT_EQ(small_hists.size(), big_hists.size());
  for (size_t i = 0; i < small_hists.size(); ++i) {
    EXPECT_EQ(small_hists[i].histogram.counts,
              big_hists[i].histogram.counts);
  }
  EXPECT_LT(big->seconds, small->seconds);
}

TEST_F(EnginesExtraTest, SparkClusterScalingDirection) {
  const TaskOptions request = TaskOptions::Default(core::TaskType::kPar);
  double small_seconds = 0.0, big_seconds = 0.0;
  {
    SparkEngine::Options options;
    options.cluster.num_nodes = 2;
    options.cluster.slots_per_node = 2;
    options.block_bytes = 16 << 10;
    SparkEngine engine(options);
    ASSERT_TRUE(engine.Attach(Source()).ok());
    auto metrics = engine.RunTask(request, nullptr);
    ASSERT_TRUE(metrics.ok());
    small_seconds = metrics->seconds;
  }
  {
    SparkEngine::Options options;
    options.cluster.num_nodes = 16;
    options.cluster.slots_per_node = 12;
    options.block_bytes = 16 << 10;
    SparkEngine engine(options);
    ASSERT_TRUE(engine.Attach(Source()).ok());
    auto metrics = engine.RunTask(request, nullptr);
    ASSERT_TRUE(metrics.ok());
    big_seconds = metrics->seconds;
  }
  EXPECT_LT(big_seconds, small_seconds);
}

TEST_F(EnginesExtraTest, BenchmarkRunnerWarmPath) {
  RunSpec spec;
  spec.kind = EngineKind::kMadlib;
  spec.factory.spool_dir = (*dir_ / "spool_runner").string();
  spec.source = Source();
  spec.options = TaskOptions::Default(core::TaskType::kPar);
  spec.warm = true;
  spec.keep_outputs = true;
  auto report = RunBenchmark(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->attach_seconds, 0.0);
  EXPECT_GT(report->warmup_seconds, 0.0);
  EXPECT_EQ(report->results.Get<core::DailyProfileResult>().size(),
            dataset_->num_consumers());
}

TEST_F(EnginesExtraTest, BenchmarkRunnerClusterEngine) {
  RunSpec spec;
  spec.kind = EngineKind::kHive;
  spec.factory.cluster.num_nodes = 4;
  spec.factory.cluster.slots_per_node = 2;
  spec.source = Source();
  spec.options = TaskOptions::Default(core::TaskType::kHistogram);
  spec.keep_outputs = true;
  auto report = RunBenchmark(spec);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->simulated);
  EXPECT_GT(report->memory_bytes, 0);
  EXPECT_EQ(report->results.Get<core::HistogramResult>().size(),
            dataset_->num_consumers());
}

TEST_F(EnginesExtraTest, MatlabDropWarmDataReturnsToCold) {
  MatlabEngine engine;
  ASSERT_TRUE(engine.Attach(Source()).ok());
  ASSERT_TRUE(engine.WarmUp().ok());
  engine.DropWarmData();
  TaskResultSet results;
  ASSERT_TRUE(
      engine.RunTask(TaskOptions::Default(core::TaskType::kHistogram),
                     &results)
          .ok());
  EXPECT_EQ(results.Get<core::HistogramResult>().size(),
            dataset_->num_consumers());
}

TEST_F(EnginesExtraTest, MadlibReattachReplacesData) {
  MadlibEngine engine;
  ASSERT_TRUE(engine.Attach(Source()).ok());
  // Attach a smaller dataset; results must reflect the new data only.
  MeterDataset small = *dataset_;
  small.TruncateConsumers(3);
  const std::string small_csv = (*dir_ / "small.csv").string();
  ASSERT_TRUE(storage::WriteReadingsCsv(small, small_csv).ok());
  ASSERT_TRUE(engine.Attach(*DataSource::SingleCsv(small_csv)).ok());
  TaskResultSet results;
  ASSERT_TRUE(
      engine.RunTask(TaskOptions::Default(core::TaskType::kHistogram),
                     &results)
          .ok());
  EXPECT_EQ(results.Get<core::HistogramResult>().size(), 3u);
}

}  // namespace
}  // namespace smartmeter::engines
