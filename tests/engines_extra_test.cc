// Additional engine behaviours: reconfiguration, unattached use, warm
// benchmark-runner paths, and cluster scaling direction.
#include <filesystem>

#include <gtest/gtest.h>

#include "datagen/seed_generator.h"
#include "engines/benchmark_runner.h"
#include "engines/hive_engine.h"
#include "engines/madlib_engine.h"
#include "engines/matlab_engine.h"
#include "engines/spark_engine.h"
#include "engines/systemc_engine.h"
#include "storage/csv.h"
#include "timeseries/calendar.h"

namespace smartmeter::engines {
namespace {

namespace fs = std::filesystem;

class EnginesExtraTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new fs::path(fs::path(::testing::TempDir()) /
                        "engines_extra_test");
    fs::create_directories(*dir_);
    datagen::SeedGeneratorOptions options;
    options.num_households = 10;
    options.hours = kHoursPerYear;
    options.seed = 77;
    dataset_ = new MeterDataset(*datagen::GenerateSeedDataset(options));
    single_csv_ = (*dir_ / "data.csv").string();
    ASSERT_TRUE(storage::WriteReadingsCsv(*dataset_, single_csv_).ok());
  }
  static void TearDownTestSuite() {
    std::error_code ec;
    fs::remove_all(*dir_, ec);
    delete dataset_;
    delete dir_;
  }

  static DataSource Source() {
    DataSource source;
    source.layout = DataSource::Layout::kSingleCsv;
    source.files = {single_csv_};
    return source;
  }

  static fs::path* dir_;
  static MeterDataset* dataset_;
  static std::string single_csv_;
};

fs::path* EnginesExtraTest::dir_ = nullptr;
MeterDataset* EnginesExtraTest::dataset_ = nullptr;
std::string EnginesExtraTest::single_csv_;

TEST_F(EnginesExtraTest, RunBeforeAttachFails) {
  TaskRequest request;
  request.task = core::TaskType::kHistogram;
  SystemCEngine systemc((*dir_ / "spool_unattached").string());
  EXPECT_FALSE(systemc.RunTask(request, nullptr).ok());
  HiveEngine hive(HiveEngine::Options{});
  EXPECT_FALSE(hive.RunTask(request, nullptr).ok());
  SparkEngine spark(SparkEngine::Options{});
  EXPECT_FALSE(spark.RunTask(request, nullptr).ok());
}

TEST_F(EnginesExtraTest, SetClusterConfigKeepsResultsChangesTime) {
  HiveEngine::Options options;
  options.cluster.num_nodes = 2;
  options.cluster.slots_per_node = 2;
  options.block_bytes = 16 << 10;
  HiveEngine engine(options);
  ASSERT_TRUE(engine.Attach(Source()).ok());
  TaskRequest request;
  request.task = core::TaskType::kHistogram;
  TaskOutputs small_outputs;
  auto small = engine.RunTask(request, &small_outputs);
  ASSERT_TRUE(small.ok());

  cluster::ClusterConfig bigger;
  bigger.num_nodes = 16;
  bigger.slots_per_node = 12;
  engine.SetClusterConfig(bigger);
  TaskOutputs big_outputs;
  auto big = engine.RunTask(request, &big_outputs);
  ASSERT_TRUE(big.ok());

  // Same analytics, faster simulated wall-clock on the bigger cluster.
  ASSERT_EQ(small_outputs.histograms.size(), big_outputs.histograms.size());
  for (size_t i = 0; i < small_outputs.histograms.size(); ++i) {
    EXPECT_EQ(small_outputs.histograms[i].histogram.counts,
              big_outputs.histograms[i].histogram.counts);
  }
  EXPECT_LT(big->seconds, small->seconds);
}

TEST_F(EnginesExtraTest, SparkClusterScalingDirection) {
  TaskRequest request;
  request.task = core::TaskType::kPar;
  double small_seconds = 0.0, big_seconds = 0.0;
  {
    SparkEngine::Options options;
    options.cluster.num_nodes = 2;
    options.cluster.slots_per_node = 2;
    options.block_bytes = 16 << 10;
    SparkEngine engine(options);
    ASSERT_TRUE(engine.Attach(Source()).ok());
    auto metrics = engine.RunTask(request, nullptr);
    ASSERT_TRUE(metrics.ok());
    small_seconds = metrics->seconds;
  }
  {
    SparkEngine::Options options;
    options.cluster.num_nodes = 16;
    options.cluster.slots_per_node = 12;
    options.block_bytes = 16 << 10;
    SparkEngine engine(options);
    ASSERT_TRUE(engine.Attach(Source()).ok());
    auto metrics = engine.RunTask(request, nullptr);
    ASSERT_TRUE(metrics.ok());
    big_seconds = metrics->seconds;
  }
  EXPECT_LT(big_seconds, small_seconds);
}

TEST_F(EnginesExtraTest, BenchmarkRunnerWarmPath) {
  RunSpec spec;
  spec.kind = EngineKind::kMadlib;
  spec.factory.spool_dir = (*dir_ / "spool_runner").string();
  spec.source = Source();
  spec.request.task = core::TaskType::kPar;
  spec.warm = true;
  spec.keep_outputs = true;
  auto report = RunBenchmark(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->attach_seconds, 0.0);
  EXPECT_GT(report->warmup_seconds, 0.0);
  EXPECT_EQ(report->outputs.profiles.size(), dataset_->num_consumers());
}

TEST_F(EnginesExtraTest, BenchmarkRunnerClusterEngine) {
  RunSpec spec;
  spec.kind = EngineKind::kHive;
  spec.factory.cluster.num_nodes = 4;
  spec.factory.cluster.slots_per_node = 2;
  spec.source = Source();
  spec.request.task = core::TaskType::kHistogram;
  spec.keep_outputs = true;
  auto report = RunBenchmark(spec);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->simulated);
  EXPECT_GT(report->memory_bytes, 0);
  EXPECT_EQ(report->outputs.histograms.size(),
            dataset_->num_consumers());
}

TEST_F(EnginesExtraTest, MatlabDropWarmDataReturnsToCold) {
  MatlabEngine engine;
  ASSERT_TRUE(engine.Attach(Source()).ok());
  ASSERT_TRUE(engine.WarmUp().ok());
  engine.DropWarmData();
  TaskRequest request;
  request.task = core::TaskType::kHistogram;
  TaskOutputs outputs;
  ASSERT_TRUE(engine.RunTask(request, &outputs).ok());
  EXPECT_EQ(outputs.histograms.size(), dataset_->num_consumers());
}

TEST_F(EnginesExtraTest, MadlibReattachReplacesData) {
  MadlibEngine engine;
  ASSERT_TRUE(engine.Attach(Source()).ok());
  // Attach a smaller dataset; results must reflect the new data only.
  MeterDataset small = *dataset_;
  small.TruncateConsumers(3);
  const std::string small_csv = (*dir_ / "small.csv").string();
  ASSERT_TRUE(storage::WriteReadingsCsv(small, small_csv).ok());
  DataSource source;
  source.layout = DataSource::Layout::kSingleCsv;
  source.files = {small_csv};
  ASSERT_TRUE(engine.Attach(source).ok());
  TaskRequest request;
  request.task = core::TaskType::kHistogram;
  TaskOutputs outputs;
  ASSERT_TRUE(engine.RunTask(request, &outputs).ok());
  EXPECT_EQ(outputs.histograms.size(), 3u);
}

}  // namespace
}  // namespace smartmeter::engines
