#include <atomic>
#include <cmath>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "common/flags.h"
#include "common/memory_probe.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace smartmeter {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("household 7");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "household 7");
  EXPECT_EQ(st.ToString(), "NotFound: household 7");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kIOError,
        StatusCode::kCorruption, StatusCode::kOutOfRange,
        StatusCode::kNotSupported, StatusCode::kInternal,
        StatusCode::kAborted}) {
    EXPECT_FALSE(StatusCodeName(code).empty());
    EXPECT_NE(StatusCodeName(code), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::IOError("x"), Status::IOError("x"));
  EXPECT_FALSE(Status::IOError("x") == Status::IOError("y"));
  EXPECT_FALSE(Status::IOError("x") == Status::Corruption("x"));
}

Status FailingHelper() { return Status::Aborted("boom"); }

Status UsesReturnIfError() {
  SM_RETURN_IF_ERROR(FailingHelper());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(UsesReturnIfError().code(), StatusCode::kAborted);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> DoubleOrFail(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return x * 2;
}

Result<int> ChainResults(int x) {
  SM_ASSIGN_OR_RETURN(int doubled, DoubleOrFail(x));
  return doubled + 1;
}

TEST(ResultTest, AssignOrReturnChains) {
  ASSERT_TRUE(ChainResults(3).ok());
  EXPECT_EQ(*ChainResults(3), 7);
  EXPECT_FALSE(ChainResults(-1).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

// ---------------------------------------------------------------------------
// String utilities
// ---------------------------------------------------------------------------

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = SplitString("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringUtilTest, SplitSingleField) {
  auto parts = SplitString("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringUtilTest, SplitEmptyString) {
  auto parts = SplitString("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringUtilTest, SplitTrailingDelimiter) {
  auto parts = SplitString("a,b,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  x \t\n"), "x");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" \t "), "");
  EXPECT_EQ(TrimWhitespace("no-trim"), "no-trim");
}

TEST(StringUtilTest, ParseDoubleValid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-0.5"), -0.5);
  EXPECT_DOUBLE_EQ(*ParseDouble(" 7 "), 7.0);
}

TEST(StringUtilTest, ParseDoubleInvalid) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
}

TEST(StringUtilTest, ParseInt64Valid) {
  EXPECT_EQ(*ParseInt64("123"), 123);
  EXPECT_EQ(*ParseInt64("-9"), -9);
}

TEST(StringUtilTest, ParseInt64Invalid) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12.5").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999").ok());
}

TEST(StringUtilTest, StringPrintfFormats) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%.2f", 1.234), "1.23");
}

TEST(StringUtilTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.00 KB");
  EXPECT_EQ(HumanBytes(int64_t{3} << 20), "3.00 MB");
  EXPECT_EQ(HumanBytes(int64_t{5} << 30), "5.00 GB");
}

TEST(StringUtilTest, HumanSeconds) {
  EXPECT_EQ(HumanSeconds(0.0123), "12.30 ms");
  EXPECT_EQ(HumanSeconds(2.5), "2.500 s");
  EXPECT_EQ(HumanSeconds(120.0), "2.00 min");
}

// ---------------------------------------------------------------------------
// Flags
// ---------------------------------------------------------------------------

TEST(FlagParserTest, ParsesAllForms) {
  const char* argv[] = {"prog",      "--scale=100", "--name=ontario",
                        "--verbose", "positional",  "--ratio=0.5"};
  FlagParser flags(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("scale", 0), 100);
  EXPECT_EQ(flags.GetString("name", ""), "ontario");
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio", 0.0), 0.5);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(FlagParserTest, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  FlagParser flags(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("missing", 42), 42);
  EXPECT_EQ(flags.GetString("missing", "dft"), "dft");
  EXPECT_FALSE(flags.GetBool("missing", false));
  EXPECT_FALSE(flags.HasFlag("missing"));
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntInRangeAndRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const uint64_t v = rng.UniformInt(10);
    ASSERT_LT(v, 10u);
    ++counts[static_cast<size_t>(v)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 100);  // Within 10% of expectation.
  }
}

TEST(RngTest, GaussianMomentsApproximatelyCorrect) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(5.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(17);
  Rng child = parent.Split();
  // The child must not replay the parent's stream.
  Rng parent_copy(17);
  (void)parent_copy.NextUint64();  // Same position as parent after Split.
  EXPECT_NE(child.NextUint64(), parent_copy.NextUint64());
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&hits](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&called](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  const std::thread::id main_id = std::this_thread::get_id();
  std::thread::id body_id;
  pool.ParallelFor(10, [&body_id](size_t, size_t) {
    body_id = std::this_thread::get_id();
  });
  EXPECT_EQ(body_id, main_id);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

// ---------------------------------------------------------------------------
// Memory probe / stopwatch
// ---------------------------------------------------------------------------

TEST(MemoryProbeTest, CurrentRssPositive) {
  EXPECT_GT(CurrentRssBytes(), 0);
  // VmHWM is absent on some container kernels; when present it must be
  // consistent with the live RSS.
  const int64_t peak = PeakRssBytes();
  if (peak > 0) {
    EXPECT_GE(peak, CurrentRssBytes() / 2);
  }
}

TEST(MemoryProbeTest, SamplerCollectsSamples) {
  MemorySampler sampler(1);
  sampler.Start();
  // Allocate something so RSS is alive while sampling.
  std::vector<double> ballast(1 << 20, 1.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  sampler.Stop();
  EXPECT_GT(sampler.sample_count(), 0);
  EXPECT_GT(sampler.AverageRssBytes(), 0);
  EXPECT_GE(sampler.MaxRssBytes(), sampler.AverageRssBytes());
  EXPECT_GT(ballast[0], 0.0);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = sw.ElapsedSeconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  sw.Reset();
  EXPECT_LT(sw.ElapsedSeconds(), 0.015);
}

}  // namespace
}  // namespace smartmeter
