#include <atomic>
#include <clocale>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace smartmeter::obs {
namespace {

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(MetricsTest, CounterSumsConcurrentIncrements) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.counter");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
}

TEST(MetricsTest, GetCounterReturnsStablePointer) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("dup");
  Counter* b = registry.GetCounter("dup");
  EXPECT_EQ(a, b);
  a->Add(3);
  EXPECT_EQ(b->Value(), 3);
}

TEST(MetricsTest, GaugeSetAddAndUpdateMax) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("test.gauge");
  gauge->Set(5);
  gauge->Add(2);
  EXPECT_EQ(gauge->Value(), 7);
  gauge->UpdateMax(3);  // Lower: no change.
  EXPECT_EQ(gauge->Value(), 7);
  gauge->UpdateMax(11);
  EXPECT_EQ(gauge->Value(), 11);
}

TEST(MetricsTest, GaugeUpdateMaxConcurrentKeepsMaximum) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("test.peak");
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([gauge, t] {
      for (int i = 0; i < 1000; ++i) gauge->UpdateMax(t * 1000 + i);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(gauge->Value(), (kThreads - 1) * 1000 + 999);
}

TEST(MetricsTest, HistogramRecordsConcurrently) {
  MetricsRegistry registry;
  LatencyHistogram* hist = registry.GetHistogram("test.latency");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([hist] {
      for (int i = 0; i < kPerThread; ++i) hist->Record(0.001);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(hist->TotalCount(), kThreads * kPerThread);
  EXPECT_NEAR(hist->TotalSeconds(), kThreads * kPerThread * 0.001, 1.0);
  int64_t bucket_total = 0;
  for (int64_t c : hist->BucketCounts()) bucket_total += c;
  EXPECT_EQ(bucket_total, hist->TotalCount());
}

TEST(MetricsTest, HistogramBucketsAreExponential) {
  MetricsRegistry registry;
  LatencyHistogram* hist = registry.GetHistogram("test.buckets");
  hist->Record(0.5e-6);   // < 1 us -> bucket 0.
  hist->Record(3e-6);     // < 4 us -> bucket 2.
  hist->Record(1000.0);   // beyond the largest bound -> overflow bucket.
  std::vector<int64_t> counts = hist->BucketCounts();
  ASSERT_EQ(counts.size(), LatencyHistogram::kBuckets);
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[2], 1);
  EXPECT_EQ(counts[LatencyHistogram::kBuckets - 1], 1);
  EXPECT_GT(LatencyHistogram::BucketUpperSeconds(1),
            LatencyHistogram::BucketUpperSeconds(0));
}

TEST(MetricsTest, SnapshotAndResetKeepRegistrations) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Add(10);
  registry.GetGauge("g")->Set(4);
  registry.GetHistogram("h")->Record(0.01);
  MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "c");
  EXPECT_EQ(snap.counters[0].value, 10);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 4);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1);

  Counter* before = registry.GetCounter("c");
  registry.Reset();
  EXPECT_EQ(before, registry.GetCounter("c"));  // Pointer stays valid.
  EXPECT_EQ(before->Value(), 0);
  EXPECT_EQ(registry.Snapshot().counters.size(), 1u);
}

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

TEST(TraceTest, SpanScopeRecordsNestingDepth) {
  TraceBuffer buffer(64);
  {
    SpanScope outer("outer", &buffer);
    {
      SpanScope inner("inner", &buffer);
      { SpanScope leaf("leaf", &buffer); }
    }
  }
  std::vector<TraceEvent> events = buffer.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Spans close innermost-first.
  EXPECT_STREQ(events[0].name, "leaf");
  EXPECT_EQ(events[0].depth, 2);
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_STREQ(events[2].name, "outer");
  EXPECT_EQ(events[2].depth, 0);
  for (const TraceEvent& e : events) {
    EXPECT_GE(e.end_ns, e.begin_ns);
  }
  // The outer span brackets the inner ones.
  EXPECT_LE(events[2].begin_ns, events[0].begin_ns);
  EXPECT_GE(events[2].end_ns, events[1].end_ns);
}

TEST(TraceTest, RingOverwritesOldestAndCountsDropped) {
  TraceBuffer buffer(4);
  for (int i = 0; i < 10; ++i) {
    std::string name = "span" + std::to_string(i);
    buffer.Record(name.c_str(), i, i + 1, 0, 0);
  }
  EXPECT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer.dropped(), 6);
  std::vector<TraceEvent> events = buffer.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_STREQ(events.front().name, "span6");  // Oldest retained.
  EXPECT_STREQ(events.back().name, "span9");
  buffer.Clear();
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.dropped(), 0);
}

TEST(TraceTest, LongNamesAreTruncatedNotOverrun) {
  TraceBuffer buffer(4);
  const std::string longname(100, 'x');
  buffer.Record(longname.c_str(), 0, 1, 0, 0);
  std::vector<TraceEvent> events = buffer.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::string(events[0].name), std::string(TraceEvent::kMaxName, 'x'));
}

TEST(TraceTest, MacroRecordsIntoGlobalBuffer) {
  TraceBuffer::Global().Clear();
  { SM_TRACE_SPAN("test.macro_span"); }
  std::vector<TraceEvent> events = TraceBuffer::Global().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test.macro_span");
  TraceBuffer::Global().Clear();
}

TEST(TraceTest, ConcurrentSpansAllRetained) {
  TraceBuffer buffer(1024);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&buffer] {
      for (int i = 0; i < kPerThread; ++i) {
        SpanScope span("worker", &buffer);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(buffer.size(), size_t{kThreads * kPerThread});
  EXPECT_EQ(buffer.dropped(), 0);
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

TEST(JsonTest, DumpParseRoundTrip) {
  JsonValue obj = JsonValue::Object();
  obj.Set("name", JsonValue("bench \"smoke\"\n"));
  obj.Set("count", JsonValue(int64_t{42}));
  obj.Set("ratio", JsonValue(0.25));
  obj.Set("ok", JsonValue(true));
  obj.Set("missing", JsonValue());
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue(int64_t{1}));
  arr.Append(JsonValue("two"));
  obj.Set("items", std::move(arr));

  const std::string text = obj.Dump();
  JsonValue parsed;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(text, &parsed, &error)) << error;
  EXPECT_EQ(parsed, obj);
  EXPECT_EQ(parsed.Get("count").AsInt(), 42);
  EXPECT_EQ(parsed.Get("name").AsString(), "bench \"smoke\"\n");
  EXPECT_DOUBLE_EQ(parsed.Get("ratio").AsDouble(), 0.25);
  EXPECT_TRUE(parsed.Get("ok").AsBool());
  EXPECT_TRUE(parsed.Get("missing").is_null());
  EXPECT_EQ(parsed.Get("items").size(), 2u);
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  JsonValue obj = JsonValue::Object();
  obj.Set("zeta", JsonValue(1));
  obj.Set("alpha", JsonValue(2));
  ASSERT_EQ(obj.members().size(), 2u);
  EXPECT_EQ(obj.members()[0].first, "zeta");
  EXPECT_EQ(obj.members()[1].first, "alpha");
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  JsonValue out;
  std::string error;
  EXPECT_FALSE(JsonValue::Parse("{\"a\": }", &out, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(JsonValue::Parse("[1, 2", &out, &error));
  EXPECT_FALSE(JsonValue::Parse("", &out, &error));
  EXPECT_FALSE(JsonValue::Parse("{} trailing", &out, &error));
}

TEST(JsonTest, IntegersPrintWithoutFraction) {
  JsonValue v(int64_t{1234567});
  EXPECT_EQ(v.Dump(), "1234567\n");
}

TEST(JsonTest, NumberParsingIsLocaleIndependent) {
  // The parser used std::strtod, which honours the host locale: under a
  // ',' decimal separator (de_DE et al.) it stops at the '.' and
  // silently truncates 3.14 to 3. from_chars always speaks the "C"
  // locale. If the container lacks the German locale the setlocale
  // calls fail and this degrades to a plain parse check.
  if (std::setlocale(LC_NUMERIC, "de_DE.UTF-8") == nullptr) {
    std::setlocale(LC_NUMERIC, "de_DE");
  }
  JsonValue out;
  std::string error;
  const bool ok = JsonValue::Parse("[3.14, -2.5e3, 0.125]", &out, &error);
  std::setlocale(LC_NUMERIC, "C");
  ASSERT_TRUE(ok) << error;
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out.items()[0].AsDouble(), 3.14);
  EXPECT_DOUBLE_EQ(out.items()[1].AsDouble(), -2500.0);
  EXPECT_DOUBLE_EQ(out.items()[2].AsDouble(), 0.125);
}

TEST(JsonTest, NumberParsingRejectsLeadingPlus) {
  // JSON forbids a leading '+'; strtod used to accept it.
  JsonValue out;
  std::string error;
  EXPECT_FALSE(JsonValue::Parse("+3.5", &out, &error));
}

// ---------------------------------------------------------------------------
// BenchReport
// ---------------------------------------------------------------------------

RunRecord MakeRecord() {
  RunRecord run;
  run.engine = "system-c";
  run.task = "histogram";
  run.layout = "single-csv";
  run.threads = 4;
  run.warm = true;
  run.simulated = false;
  run.attach_seconds = 0.125;
  run.warmup_seconds = 0.5;
  run.task_seconds = 1.75;
  run.memory_bytes = 1 << 20;
  run.quantile_seconds = 0.25;
  run.regression_seconds = 1.0;
  run.adjust_seconds = 0.5;
  // One healthy stage (fault keys omitted from the JSON) and one that
  // saw injected retries/stragglers/speculation.
  run.stages.push_back({"scan", 0.5, 3});
  run.stages.push_back({"kernel", 1.25, 8, /*retries=*/2, /*stragglers=*/1,
                        /*speculative_launched=*/1, /*speculative_wins=*/1});
  return run;
}

TEST(BenchReportTest, JsonRoundTripPreservesEverything) {
  BenchReport report;
  report.set_label("obs_test");
  report.AddRun(MakeRecord());

  MetricsSnapshot metrics;
  metrics.counters.push_back({"csv.rows_scanned", 8760});
  metrics.gauges.push_back({"threadpool.queue_depth_peak", 12});
  MetricsSnapshot::HistogramSample hist;
  hist.name = "threadpool.task_seconds";
  hist.count = 3;
  hist.total_seconds = 0.75;
  hist.bucket_counts = {0, 1, 2};
  metrics.histograms.push_back(std::move(hist));
  report.set_metrics(std::move(metrics));

  TraceEvent span;
  std::snprintf(span.name, sizeof(span.name), "bench.task");
  span.begin_ns = 100;
  span.end_ns = 2500;
  span.thread_id = 1;
  span.depth = 0;
  report.set_spans({span});

  JsonValue json = report.ToJson();
  EXPECT_EQ(json.Get("schema").AsString(), "smartmeter-bench-report/v1");

  BenchReport restored;
  std::string error;
  ASSERT_TRUE(BenchReport::FromJson(json, &restored, &error)) << error;
  EXPECT_EQ(restored.label(), "obs_test");
  ASSERT_EQ(restored.runs().size(), 1u);
  const RunRecord& run = restored.runs()[0];
  EXPECT_EQ(run.engine, "system-c");
  EXPECT_EQ(run.task, "histogram");
  EXPECT_EQ(run.layout, "single-csv");
  EXPECT_EQ(run.threads, 4);
  EXPECT_TRUE(run.warm);
  EXPECT_FALSE(run.simulated);
  EXPECT_DOUBLE_EQ(run.task_seconds, 1.75);
  EXPECT_EQ(run.memory_bytes, 1 << 20);
  EXPECT_DOUBLE_EQ(run.regression_seconds, 1.0);
  ASSERT_EQ(run.stages.size(), 2u);
  EXPECT_EQ(run.stages[0].name, "scan");
  EXPECT_EQ(run.stages[0].retries, 0);
  EXPECT_EQ(run.stages[1].name, "kernel");
  EXPECT_DOUBLE_EQ(run.stages[1].seconds, 1.25);
  EXPECT_EQ(run.stages[1].retries, 2);
  EXPECT_EQ(run.stages[1].stragglers, 1);
  EXPECT_EQ(run.stages[1].speculative_launched, 1);
  EXPECT_EQ(run.stages[1].speculative_wins, 1);
  // Healthy stages serialize without the fault keys at all.
  const JsonValue& scan_row =
      json.Get("runs").items()[0].Get("stages").items()[0];
  EXPECT_FALSE(scan_row.Has("retries"));
  EXPECT_FALSE(scan_row.Has("stragglers"));
  ASSERT_EQ(restored.metrics().counters.size(), 1u);
  EXPECT_EQ(restored.metrics().counters[0].value, 8760);
  ASSERT_EQ(restored.metrics().histograms.size(), 1u);
  EXPECT_EQ(restored.metrics().histograms[0].bucket_counts.size(), 3u);
  ASSERT_EQ(restored.spans().size(), 1u);
  EXPECT_STREQ(restored.spans()[0].name, "bench.task");
  EXPECT_EQ(restored.spans()[0].end_ns, 2500);

  // Serializing the restored report reproduces the original text.
  EXPECT_EQ(restored.ToJsonString(), report.ToJsonString());
}

TEST(BenchReportTest, ServingTenantRowsRoundTrip) {
  BenchReport report;
  RunRecord run = MakeRecord();
  run.outcome = "ok";
  run.clients = 3;
  run.queries_ok = 90;
  run.queries_shed = 10;
  run.p99_seconds = 0.25;
  run.queries_per_second = 120.0;
  run.shards = 4;
  run.tenants.push_back({"hostile", 60, 40, 20, 20.0 / 60.0, 0.4});
  run.tenants.push_back({"polite", 40, 40, 0, 0.0, 0.1});
  report.AddRun(run);

  JsonValue json = report.ToJson();
  BenchReport restored;
  std::string error;
  ASSERT_TRUE(BenchReport::FromJson(json, &restored, &error)) << error;
  ASSERT_EQ(restored.runs().size(), 1u);
  const RunRecord& out = restored.runs()[0];
  EXPECT_EQ(out.shards, 4);
  ASSERT_EQ(out.tenants.size(), 2u);
  EXPECT_EQ(out.tenants[0].tenant, "hostile");
  EXPECT_EQ(out.tenants[0].queries_shed, 20);
  EXPECT_DOUBLE_EQ(out.tenants[0].shed_rate, 20.0 / 60.0);
  EXPECT_EQ(out.tenants[1].tenant, "polite");
  EXPECT_DOUBLE_EQ(out.tenants[1].p99_seconds, 0.1);
  EXPECT_EQ(restored.ToJsonString(), report.ToJsonString());
}

TEST(BenchReportTest, ServingBlockWithoutShardingKeysRoundTrips) {
  // A pre-sharding serving record must serialize without the new keys.
  BenchReport report;
  RunRecord run = MakeRecord();
  run.outcome = "ok";
  run.queries_ok = 5;
  report.AddRun(run);
  JsonValue json = report.ToJson();
  const JsonValue& serving = json.Get("runs").items()[0].Get("serving");
  EXPECT_FALSE(serving.Has("shards"));
  EXPECT_FALSE(serving.Has("tenants"));
  BenchReport restored;
  std::string error;
  ASSERT_TRUE(BenchReport::FromJson(json, &restored, &error)) << error;
  EXPECT_EQ(restored.runs()[0].shards, 0);
  EXPECT_TRUE(restored.runs()[0].tenants.empty());
}

TEST(BenchReportTest, IngestBlockRoundTrips) {
  BenchReport report;
  RunRecord run = MakeRecord();
  run.ingest_rate = 12500.0;
  run.freshness_p50_seconds = 0.012;
  run.freshness_p99_seconds = 0.045;
  report.AddRun(run);

  JsonValue json = report.ToJson();
  const JsonValue& ingest = json.Get("runs").items()[0].Get("ingest");
  EXPECT_DOUBLE_EQ(ingest.Get("rate").AsDouble(), 12500.0);
  BenchReport restored;
  std::string error;
  ASSERT_TRUE(BenchReport::FromJson(json, &restored, &error)) << error;
  const RunRecord& out = restored.runs()[0];
  EXPECT_DOUBLE_EQ(out.ingest_rate, 12500.0);
  EXPECT_DOUBLE_EQ(out.freshness_p50_seconds, 0.012);
  EXPECT_DOUBLE_EQ(out.freshness_p99_seconds, 0.045);
  EXPECT_EQ(restored.ToJsonString(), report.ToJsonString());
}

TEST(BenchReportTest, BatchRunsOmitIngestBlock) {
  // Batch-only records must serialize byte-identically to pre-ingest
  // reports: no "ingest" key at all.
  BenchReport report;
  report.AddRun(MakeRecord());
  JsonValue json = report.ToJson();
  EXPECT_FALSE(json.Get("runs").items()[0].Has("ingest"));
  BenchReport restored;
  std::string error;
  ASSERT_TRUE(BenchReport::FromJson(json, &restored, &error)) << error;
  EXPECT_DOUBLE_EQ(restored.runs()[0].ingest_rate, 0.0);
  EXPECT_DOUBLE_EQ(restored.runs()[0].freshness_p99_seconds, 0.0);
}

TEST(BenchReportTest, FromJsonRejectsWrongSchema) {
  JsonValue json = JsonValue::Object();
  json.Set("schema", JsonValue("not-a-bench-report"));
  BenchReport out;
  std::string error;
  EXPECT_FALSE(BenchReport::FromJson(json, &out, &error));
  EXPECT_FALSE(error.empty());
}

TEST(BenchReportTest, WriteAndReadFile) {
  BenchReport report;
  report.set_label("file_test");
  report.AddRun(MakeRecord());
  const std::string path =
      testing::TempDir() + "/obs_test_report.json";
  std::string error;
  ASSERT_TRUE(report.WriteFile(path, &error)) << error;
  BenchReport restored;
  ASSERT_TRUE(BenchReport::ReadFile(path, &restored, &error)) << error;
  EXPECT_EQ(restored.label(), "file_test");
  ASSERT_EQ(restored.runs().size(), 1u);
  EXPECT_DOUBLE_EQ(restored.runs()[0].task_seconds, 1.75);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace smartmeter::obs
