// Cross-framework properties: the MapReduce and dataflow substrates must
// compute identical answers for equivalent plans, and the cost model
// must behave monotonically.
#include <algorithm>
#include <filesystem>
#include <map>
#include <numeric>

#include <gtest/gtest.h>

#include "cluster/block_store.h"
#include "cluster/dataflow.h"
#include "cluster/mapreduce.h"
#include "cluster/task_scheduler.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace smartmeter::cluster {
namespace {

namespace fs = std::filesystem;

class ClusterEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("cluster_eq_" + std::string(::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name()));
    fs::create_directories(dir_);
    // key,value rows with repeating keys.
    Rng rng(17);
    std::string contents;
    for (int i = 0; i < 500; ++i) {
      const int64_t key = static_cast<int64_t>(rng.UniformInt(20));
      const int64_t value = static_cast<int64_t>(rng.UniformInt(100));
      expected_[key] += value;
      contents += StringPrintf("%lld,%lld\n", static_cast<long long>(key),
                               static_cast<long long>(value));
    }
    path_ = (dir_ / "kv.csv").string();
    FILE* f = fopen(path_.c_str(), "w");
    fwrite(contents.data(), 1, contents.size(), f);
    fclose(f);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  static Status ParseKv(std::string_view line, int64_t* key,
                        int64_t* value) {
    const auto parts = SplitString(line, ',');
    if (parts.size() != 2) return Status::Corruption("bad kv line");
    SM_ASSIGN_OR_RETURN(*key, ParseInt64(parts[0]));
    SM_ASSIGN_OR_RETURN(*value, ParseInt64(parts[1]));
    return Status::OK();
  }

  ClusterConfig Config() {
    ClusterConfig config;
    config.num_nodes = 3;
    config.slots_per_node = 2;
    return config;
  }

  fs::path dir_;
  std::string path_;
  std::map<int64_t, int64_t> expected_;
};

TEST_F(ClusterEquivalenceTest, MapReduceAndDataflowAgreeOnAggregation) {
  BlockStore store(3, 128);
  ASSERT_TRUE(store.AddFile(path_).ok());
  const auto splits = store.SplittableSplits();
  ASSERT_GT(splits.size(), 1u);

  // MapReduce plan.
  mapreduce::MapFn<int64_t, int64_t> map =
      [](const InputSplit& split,
         mapreduce::Emitter<int64_t, int64_t>* emitter) -> Status {
    SM_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                        ReadSplitLines(split));
    for (const auto& line : lines) {
      int64_t key = 0, value = 0;
      SM_RETURN_IF_ERROR(ParseKv(line, &key, &value));
      emitter->Emit(key, value);
    }
    return Status::OK();
  };
  mapreduce::ReduceFn<int64_t, int64_t, std::pair<int64_t, int64_t>>
      reduce = [](const int64_t& key, std::vector<int64_t>&& values,
                  std::vector<std::pair<int64_t, int64_t>>* out) -> Status {
    out->emplace_back(key, std::accumulate(values.begin(), values.end(),
                                           int64_t{0}));
    return Status::OK();
  };
  auto mr = (mapreduce::RunMapReduce<int64_t, int64_t,
                                     std::pair<int64_t, int64_t>>(
      splits, Config(), {}, map, reduce));
  ASSERT_TRUE(mr.ok());
  std::map<int64_t, int64_t> mr_result(mr->outputs.begin(),
                                       mr->outputs.end());

  // Dataflow plan over the same splits.
  dataflow::Context ctx(Config());
  auto rows = ctx.ReadText<std::pair<int64_t, int64_t>>(
      splits,
      [](std::string_view line,
         std::vector<std::pair<int64_t, int64_t>>* out) -> Status {
        int64_t key = 0, value = 0;
        SM_RETURN_IF_ERROR(ParseKv(line, &key, &value));
        out->emplace_back(key, value);
        return Status::OK();
      });
  ASSERT_TRUE(rows.ok());
  auto grouped =
      (ctx.GroupBy<std::pair<int64_t, int64_t>, int64_t, int64_t>(
          *rows, [](const std::pair<int64_t, int64_t>& kv) { return kv; }));
  ASSERT_TRUE(grouped.ok());
  std::map<int64_t, int64_t> df_result;
  for (const auto& [key, values] : ctx.Collect(std::move(*grouped))) {
    df_result[key] =
        std::accumulate(values.begin(), values.end(), int64_t{0});
  }

  EXPECT_EQ(mr_result, expected_);
  EXPECT_EQ(df_result, expected_);
}

TEST_F(ClusterEquivalenceTest, ReducerCountDoesNotChangeResults) {
  BlockStore store(2, 64);
  ASSERT_TRUE(store.AddFile(path_).ok());
  mapreduce::MapFn<int64_t, int64_t> map =
      [](const InputSplit& split,
         mapreduce::Emitter<int64_t, int64_t>* emitter) -> Status {
    SM_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                        ReadSplitLines(split));
    for (const auto& line : lines) {
      int64_t key = 0, value = 0;
      SM_RETURN_IF_ERROR(ParseKv(line, &key, &value));
      emitter->Emit(key, value);
    }
    return Status::OK();
  };
  mapreduce::ReduceFn<int64_t, int64_t, std::pair<int64_t, int64_t>>
      reduce = [](const int64_t& key, std::vector<int64_t>&& values,
                  std::vector<std::pair<int64_t, int64_t>>* out) -> Status {
    out->emplace_back(key, std::accumulate(values.begin(), values.end(),
                                           int64_t{0}));
    return Status::OK();
  };
  for (int reducers : {1, 2, 7, 64}) {
    mapreduce::JobOptions options;
    options.num_reducers = reducers;
    auto result = (mapreduce::RunMapReduce<int64_t, int64_t,
                                           std::pair<int64_t, int64_t>>(
        store.SplittableSplits(), Config(), options, map, reduce));
    ASSERT_TRUE(result.ok()) << reducers;
    std::map<int64_t, int64_t> got(result->outputs.begin(),
                                   result->outputs.end());
    EXPECT_EQ(got, expected_) << reducers << " reducers";
  }
}

TEST(CostModelPropertyTest, MakespanMonotoneInSlots) {
  Rng rng(23);
  std::vector<double> durations(100);
  for (double& d : durations) d = rng.NextDouble();
  double prev = std::numeric_limits<double>::infinity();
  for (int nodes : {1, 2, 4, 8, 16, 32}) {
    ClusterConfig config;
    config.num_nodes = nodes;
    config.slots_per_node = 2;
    TaskWaveRunner runner(config, 0.0);
    const double makespan = runner.Makespan(durations);
    EXPECT_LE(makespan, prev + 1e-12) << nodes;
    // Never better than perfect parallelism, never worse than serial.
    const double total =
        std::accumulate(durations.begin(), durations.end(), 0.0);
    EXPECT_GE(makespan, total / config.total_slots() - 1e-12);
    EXPECT_LE(makespan, total + 1e-12);
    prev = makespan;
  }
}

TEST(CostModelPropertyTest, SimulatedSecondsMonotoneInEachCost) {
  ClusterConfig config;
  TaskWaveRunner runner(config, 0.05);
  TaskStats base;
  base.compute_seconds = 0.1;
  base.input_bytes = 1 << 20;
  base.shuffle_bytes = 1 << 20;
  base.files_opened = 1;
  const double baseline = runner.SimulatedSeconds(base);
  TaskStats more = base;
  more.input_bytes *= 2;
  EXPECT_GT(runner.SimulatedSeconds(more), baseline);
  more = base;
  more.shuffle_bytes *= 2;
  EXPECT_GT(runner.SimulatedSeconds(more), baseline);
  more = base;
  more.files_opened += 5;
  EXPECT_GT(runner.SimulatedSeconds(more), baseline);
  more = base;
  more.compute_seconds *= 2;
  EXPECT_GT(runner.SimulatedSeconds(more), baseline);
}

}  // namespace
}  // namespace smartmeter::cluster
