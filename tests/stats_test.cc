#include <algorithm>
#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "stats/descriptive.h"
#include "stats/distance.h"
#include "stats/histogram.h"
#include "stats/quantile.h"
#include "stats/topk.h"

namespace smartmeter::stats {
namespace {

// ---------------------------------------------------------------------------
// Descriptive statistics
// ---------------------------------------------------------------------------

TEST(DescriptiveTest, BasicMoments) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Sum(v), 10.0);
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_DOUBLE_EQ(PopulationVariance(v), 1.25);
  EXPECT_NEAR(SampleVariance(v), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(Min(v), 1.0);
  EXPECT_DOUBLE_EQ(Max(v), 4.0);
}

TEST(DescriptiveTest, EmptyInputs) {
  EXPECT_DOUBLE_EQ(Sum({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(SampleVariance({}), 0.0);
  EXPECT_TRUE(std::isnan(Min({})));
}

TEST(DescriptiveTest, KahanSumStaysAccurate) {
  // 10^7 additions of 0.1: naive float accumulation drifts, Kahan holds.
  std::vector<double> v(1000000, 0.1);
  EXPECT_NEAR(Sum(v), 100000.0, 1e-6);
}

TEST(DescriptiveTest, CorrelationOfLinearRelationIsOne) {
  std::vector<double> x(50), y(50);
  for (size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<double>(i);
    y[i] = 3.0 * x[i] + 1.0;
  }
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
}

TEST(DescriptiveTest, CorrelationOfConstantIsZero) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {5, 5, 5};
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, y), 0.0);
}

TEST(RunningMomentsTest, MatchesBatchComputation) {
  Rng rng(5);
  std::vector<double> v(1000);
  RunningMoments m;
  for (double& x : v) {
    x = rng.Gaussian(3.0, 2.0);
    m.Add(x);
  }
  EXPECT_NEAR(m.mean(), Mean(v), 1e-9);
  EXPECT_NEAR(m.sample_variance(), SampleVariance(v), 1e-9);
  EXPECT_EQ(m.count(), v.size());
}

// Property: merging split halves equals processing the whole stream.
class RunningMomentsMergeTest : public ::testing::TestWithParam<int> {};

TEST_P(RunningMomentsMergeTest, MergeEqualsSequential) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const size_t n = 100 + rng.UniformInt(900);
  const size_t split = rng.UniformInt(n);
  RunningMoments whole, left, right;
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.Gaussian(-1.0, 4.0);
    whole.Add(x);
    (i < split ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.sample_variance(), whole.sample_variance(), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RunningMomentsMergeTest,
                         ::testing::Range(0, 20));

// ---------------------------------------------------------------------------
// Quantiles
// ---------------------------------------------------------------------------

TEST(QuantileTest, MedianOfOddCount) {
  const std::vector<double> v = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(*Quantile(v, 0.5), 3.0);
}

TEST(QuantileTest, InterpolatesBetweenOrderStats) {
  const std::vector<double> v = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(*Quantile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(*Quantile(v, 0.75), 7.5);
}

TEST(QuantileTest, Extremes) {
  const std::vector<double> v = {4.0, 2.0, 9.0, -1.0};
  EXPECT_DOUBLE_EQ(*Quantile(v, 0.0), -1.0);
  EXPECT_DOUBLE_EQ(*Quantile(v, 1.0), 9.0);
}

TEST(QuantileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(*Quantile(std::vector<double>{7.0}, 0.3), 7.0);
}

TEST(QuantileTest, RejectsBadInput) {
  EXPECT_FALSE(Quantile({}, 0.5).ok());
  const std::vector<double> v = {1.0};
  EXPECT_FALSE(Quantile(v, -0.1).ok());
  EXPECT_FALSE(Quantile(v, 1.1).ok());
}

TEST(QuantileTest, BatchMatchesIndividual) {
  Rng rng(9);
  std::vector<double> v(500);
  for (double& x : v) x = rng.NextDouble() * 100.0;
  const std::vector<double> probs = {0.0, 0.1, 0.5, 0.9, 1.0};
  auto batch = Quantiles(v, probs);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < probs.size(); ++i) {
    EXPECT_NEAR((*batch)[i], *Quantile(v, probs[i]), 1e-9) << probs[i];
  }
}

// Property: the quantile lies between min and max and is monotone in p.
class QuantilePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(QuantilePropertyTest, MonotoneAndBounded) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 1);
  std::vector<double> v(1 + rng.UniformInt(200));
  for (double& x : v) x = rng.Gaussian(0.0, 10.0);
  double prev = *Quantile(v, 0.0);
  EXPECT_DOUBLE_EQ(prev, *std::min_element(v.begin(), v.end()));
  for (int step = 1; step <= 10; ++step) {
    const double q = *Quantile(v, step / 10.0);
    EXPECT_GE(q, prev - 1e-12);
    prev = q;
  }
  EXPECT_DOUBLE_EQ(prev, *std::max_element(v.begin(), v.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantilePropertyTest,
                         ::testing::Range(0, 25));

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

TEST(HistogramTest, TenBucketsUniformRange) {
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(static_cast<double>(i));
  auto hist = BuildEquiWidthHistogram(v, 10);
  ASSERT_TRUE(hist.ok());
  EXPECT_DOUBLE_EQ(hist->min, 0.0);
  EXPECT_DOUBLE_EQ(hist->max, 99.0);
  EXPECT_EQ(hist->TotalCount(), 100);
  for (int64_t c : hist->counts) EXPECT_EQ(c, 10);
}

TEST(HistogramTest, MaxValueLandsInLastBucket) {
  const std::vector<double> v = {0.0, 1.0};
  auto hist = BuildEquiWidthHistogram(v, 10);
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(hist->counts.front(), 1);
  EXPECT_EQ(hist->counts.back(), 1);
}

TEST(HistogramTest, ConstantSeriesAllInFirstBucket) {
  const std::vector<double> v = {2.0, 2.0, 2.0};
  auto hist = BuildEquiWidthHistogram(v, 10);
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(hist->counts[0], 3);
  EXPECT_EQ(hist->TotalCount(), 3);
}

TEST(HistogramTest, FixedRangeClampsOutliers) {
  const std::vector<double> v = {-5.0, 0.5, 20.0};
  auto hist = BuildFixedRangeHistogram(v, 4, 0.0, 1.0);
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(hist->counts[0], 1);  // -5 clamped low.
  EXPECT_EQ(hist->counts[2], 1);  // 0.5 sits exactly on the 3rd bucket edge.
  EXPECT_EQ(hist->counts[3], 1);  // 20 clamped high.
}

TEST(HistogramTest, RejectsBadArguments) {
  EXPECT_FALSE(BuildEquiWidthHistogram({}, 10).ok());
  const std::vector<double> v = {1.0};
  EXPECT_FALSE(BuildEquiWidthHistogram(v, 0).ok());
  EXPECT_FALSE(BuildFixedRangeHistogram(v, 4, 2.0, 1.0).ok());
}

TEST(HistogramTest, EquiDepthBalancesCounts) {
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(static_cast<double>(i * i));
  auto hist = BuildEquiDepthHistogram(v, 10);
  ASSERT_TRUE(hist.ok());
  int64_t total = 0;
  for (int64_t c : hist->counts) {
    EXPECT_NEAR(static_cast<double>(c), 100.0, 1.0);
    total += c;
  }
  EXPECT_EQ(total, 1000);
}

// Property: counts always total the input size regardless of data shape.
class HistogramTotalTest : public ::testing::TestWithParam<int> {};

TEST_P(HistogramTotalTest, CountsSumToInputSize) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7 + 3);
  std::vector<double> v(1 + rng.UniformInt(500));
  for (double& x : v) x = rng.Gaussian(1.0, 5.0);
  auto hist = BuildEquiWidthHistogram(v, 10);
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(hist->TotalCount(), static_cast<int64_t>(v.size()));
  EXPECT_EQ(hist->counts.size(), 10u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramTotalTest, ::testing::Range(0, 25));

// ---------------------------------------------------------------------------
// Distance kernels
// ---------------------------------------------------------------------------

TEST(DistanceTest, DotAndNorm) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(x, y), 32.0);
  EXPECT_DOUBLE_EQ(Norm(x), std::sqrt(14.0));
}

TEST(DistanceTest, DotHandlesOddLengths) {
  // Exercise the unrolled loop's remainder path.
  for (size_t n : {1u, 2u, 3u, 5u, 7u, 9u}) {
    std::vector<double> x(n, 2.0), y(n, 3.0);
    EXPECT_DOUBLE_EQ(Dot(x, y), 6.0 * static_cast<double>(n));
  }
}

TEST(DistanceTest, CosineOfParallelVectorsIsOne) {
  const std::vector<double> x = {1.0, 2.0};
  const std::vector<double> y = {2.0, 4.0};
  EXPECT_NEAR(CosineSimilarity(x, y), 1.0, 1e-12);
}

TEST(DistanceTest, CosineOfOrthogonalVectorsIsZero) {
  const std::vector<double> x = {1.0, 0.0};
  const std::vector<double> y = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(CosineSimilarity(x, y), 0.0);
}

TEST(DistanceTest, CosineOfZeroVectorIsZero) {
  const std::vector<double> x = {0.0, 0.0};
  const std::vector<double> y = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(CosineSimilarity(x, y), 0.0);
}

TEST(DistanceTest, CosineSymmetricAndBounded) {
  Rng rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> x(16), y(16);
    for (auto& v : x) v = rng.Gaussian(0, 1);
    for (auto& v : y) v = rng.Gaussian(0, 1);
    const double xy = CosineSimilarity(x, y);
    EXPECT_NEAR(xy, CosineSimilarity(y, x), 1e-12);
    EXPECT_LE(std::abs(xy), 1.0 + 1e-12);
  }
}

TEST(DistanceTest, SquaredEuclidean) {
  const std::vector<double> x = {0.0, 0.0};
  const std::vector<double> y = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(SquaredEuclidean(x, y), 25.0);
}

// ---------------------------------------------------------------------------
// TopK
// ---------------------------------------------------------------------------

TEST(TopKTest, KeepsBestK) {
  TopK<int> top(3);
  for (int i = 0; i < 10; ++i) top.Offer(static_cast<double>(i), i);
  auto sorted = top.Sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].id, 9);
  EXPECT_EQ(sorted[1].id, 8);
  EXPECT_EQ(sorted[2].id, 7);
}

TEST(TopKTest, TieBreaksOnSmallerId) {
  TopK<int> top(2);
  top.Offer(1.0, 5);
  top.Offer(1.0, 3);
  top.Offer(1.0, 9);
  auto sorted = top.Sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].id, 3);
  EXPECT_EQ(sorted[1].id, 5);
}

TEST(TopKTest, FewerThanKItems) {
  TopK<int> top(10);
  top.Offer(2.0, 1);
  top.Offer(1.0, 2);
  auto sorted = top.Sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].id, 1);
}

TEST(TopKTest, MergeEqualsUnion) {
  Rng rng(77);
  TopK<int> merged(5), a(5), b(5), whole(5);
  for (int i = 0; i < 100; ++i) {
    const double score = rng.NextDouble();
    whole.Offer(score, i);
    (i % 2 == 0 ? a : b).Offer(score, i);
  }
  merged.Merge(a);
  merged.Merge(b);
  auto lhs = merged.Sorted();
  auto rhs = whole.Sorted();
  ASSERT_EQ(lhs.size(), rhs.size());
  for (size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_EQ(lhs[i].id, rhs[i].id);
    EXPECT_DOUBLE_EQ(lhs[i].score, rhs[i].score);
  }
}

TEST(TopKTest, ZeroCapacityNeverStores) {
  TopK<int> top(0);
  top.Offer(1.0, 1);
  EXPECT_EQ(top.Sorted().size(), 0u);
}

}  // namespace
}  // namespace smartmeter::stats
