// Physical-plan IR tests: the five engines' plan paths produce
// bit-identical results over the same input bytes, plan shapes are
// stable (DebugString goldens), per-stage timings are reported, and a
// stopped QueryContext aborts a plan at a partition boundary.
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/seed_generator.h"
#include "engines/engine_util.h"
#include "engines/hive_engine.h"
#include "engines/madlib_engine.h"
#include "engines/matlab_engine.h"
#include "engines/spark_engine.h"
#include "engines/systemc_engine.h"
#include "exec/plan.h"
#include "exec/plan_executor.h"
#include "exec/query_context.h"
#include "storage/column_store.h"
#include "table/delta_store.h"
#include "storage/csv.h"
#include "timeseries/calendar.h"

namespace smartmeter::engines {
namespace {

namespace fs = std::filesystem;

using table::DataSource;

class PlanTest : public ::testing::Test {
 protected:
  static constexpr int kHouseholds = 6;

  static void SetUpTestSuite() {
    dir_ = new fs::path(fs::path(::testing::TempDir()) / "plan_test");
    fs::create_directories(*dir_);
    datagen::SeedGeneratorOptions options;
    options.num_households = kHouseholds;
    options.hours = kHoursPerYear;
    options.seed = 411;
    MeterDataset dataset = *datagen::GenerateSeedDataset(options);
    single_csv_ = (*dir_ / "data.csv").string();
    ASSERT_TRUE(storage::WriteReadingsCsv(dataset, single_csv_).ok());
    auto part =
        storage::WritePartitionedCsv(dataset, (*dir_ / "part").string());
    ASSERT_TRUE(part.ok());
    partitioned_files_ = new std::vector<std::string>(std::move(*part));
  }

  static void TearDownTestSuite() {
    std::error_code ec;
    fs::remove_all(*dir_, ec);
    delete partitioned_files_;
    delete dir_;
  }

  static cluster::ClusterConfig SmallCluster() {
    cluster::ClusterConfig config;
    config.num_nodes = 4;
    config.slots_per_node = 2;
    return config;
  }

  static SparkEngine::Options SparkOptions(int64_t block_bytes) {
    SparkEngine::Options options;
    options.cluster = SmallCluster();
    options.block_bytes = block_bytes;
    return options;
  }

  static HiveEngine::Options HiveOptions(int64_t block_bytes) {
    HiveEngine::Options options;
    options.cluster = SmallCluster();
    options.block_bytes = block_bytes;
    return options;
  }

  /// Exact equality: all five engines parse the same file bytes with the
  /// same parser and run the same kernels, so their plan paths must
  /// agree to the last bit, not to a tolerance.
  static void ExpectBitIdentical(const TaskResultSet& got,
                                 const TaskResultSet& want,
                                 core::TaskType task) {
    switch (task) {
      case core::TaskType::kHistogram: {
        const auto& g = got.Get<core::HistogramResult>();
        const auto& w = want.Get<core::HistogramResult>();
        ASSERT_EQ(g.size(), w.size());
        for (size_t i = 0; i < g.size(); ++i) {
          EXPECT_EQ(g[i].household_id, w[i].household_id);
          EXPECT_EQ(g[i].histogram.counts, w[i].histogram.counts);
        }
        break;
      }
      case core::TaskType::kThreeLine: {
        const auto& g = got.Get<core::ThreeLineResult>();
        const auto& w = want.Get<core::ThreeLineResult>();
        ASSERT_EQ(g.size(), w.size());
        for (size_t i = 0; i < g.size(); ++i) {
          EXPECT_EQ(g[i].household_id, w[i].household_id);
          EXPECT_EQ(g[i].heating_gradient, w[i].heating_gradient);
          EXPECT_EQ(g[i].cooling_gradient, w[i].cooling_gradient);
          EXPECT_EQ(g[i].base_load, w[i].base_load);
        }
        break;
      }
      case core::TaskType::kPar: {
        const auto& g = got.Get<core::DailyProfileResult>();
        const auto& w = want.Get<core::DailyProfileResult>();
        ASSERT_EQ(g.size(), w.size());
        for (size_t i = 0; i < g.size(); ++i) {
          EXPECT_EQ(g[i].household_id, w[i].household_id);
          EXPECT_EQ(g[i].profile, w[i].profile);
        }
        break;
      }
      case core::TaskType::kSimilarity: {
        const auto& g = got.Get<core::SimilarityResult>();
        const auto& w = want.Get<core::SimilarityResult>();
        ASSERT_EQ(g.size(), w.size());
        for (size_t i = 0; i < g.size(); ++i) {
          EXPECT_EQ(g[i].household_id, w[i].household_id);
          ASSERT_EQ(g[i].matches.size(), w[i].matches.size());
          for (size_t m = 0; m < g[i].matches.size(); ++m) {
            EXPECT_EQ(g[i].matches[m].household_id,
                      w[i].matches[m].household_id);
            EXPECT_EQ(g[i].matches[m].cosine, w[i].matches[m].cosine);
          }
        }
        break;
      }
    }
  }

  static fs::path* dir_;
  static std::string single_csv_;
  static std::vector<std::string>* partitioned_files_;
};

fs::path* PlanTest::dir_ = nullptr;
std::string PlanTest::single_csv_;
std::vector<std::string>* PlanTest::partitioned_files_ = nullptr;

// ---------------------------------------------------------------------------
// Five-engine plan-path parity
// ---------------------------------------------------------------------------

TEST_F(PlanTest, FiveEnginesBitIdenticalOverSameBytes) {
  SystemCEngine systemc((*dir_ / "spool").string());
  MadlibEngine madlib;
  MatlabEngine matlab;
  SparkEngine spark(SparkOptions(64 << 10));
  HiveEngine hive(HiveOptions(64 << 10));
  const DataSource source = *DataSource::SingleCsv(single_csv_);
  ASSERT_TRUE(systemc.Attach(source).ok());
  ASSERT_TRUE(madlib.Attach(source).ok());
  ASSERT_TRUE(matlab.Attach(source).ok());
  ASSERT_TRUE(spark.Attach(source).ok());
  ASSERT_TRUE(hive.Attach(source).ok());
  std::vector<AnalyticsEngine*> others = {&madlib, &matlab, &spark, &hive};

  for (core::TaskType task : core::kAllTasks) {
    const TaskOptions options = TaskOptions::Default(task);
    TaskResultSet baseline;
    auto base_metrics = systemc.RunTask(options, &baseline);
    ASSERT_TRUE(base_metrics.ok()) << base_metrics.status().ToString();
    for (AnalyticsEngine* engine : others) {
      TaskResultSet results;
      auto metrics = engine->RunTask(options, &results);
      ASSERT_TRUE(metrics.ok())
          << engine->name() << "/" << core::TaskName(task) << ": "
          << metrics.status().ToString();
      SCOPED_TRACE(std::string(engine->name()) + "/" +
                   std::string(core::TaskName(task)));
      ExpectBitIdentical(results, baseline, task);
    }
  }
}

TEST_F(PlanTest, FiveEnginesBitIdenticalAcrossColumnFormats) {
  // The SMCOLV1 -> SMCOLV2 migration is a pure storage change: every
  // engine fed the compressed file must produce the same bits as when
  // fed the raw mmap file, across all four tasks. This is the
  // non-negotiable parity pin for the compressed format.
  datagen::SeedGeneratorOptions options;
  options.num_households = kHouseholds;
  options.hours = kHoursPerYear;
  options.seed = 411;
  MeterDataset dataset = *datagen::GenerateSeedDataset(options);
  const std::string v1_path = (*dir_ / "cols.v1.smcol").string();
  const std::string v2_path = (*dir_ / "cols.v2.smcol").string();
  ASSERT_TRUE(storage::ColumnStore::WriteFile(dataset, v1_path).ok());
  ASSERT_TRUE(storage::ColumnFileWriter::WriteFile(dataset, v2_path).ok());

  const auto make_engines = [this](const char* spool) {
    std::vector<std::unique_ptr<AnalyticsEngine>> engines;
    engines.push_back(std::make_unique<SystemCEngine>((*dir_ / spool).string()));
    engines.push_back(std::make_unique<MadlibEngine>());
    engines.push_back(std::make_unique<MatlabEngine>());
    engines.push_back(std::make_unique<SparkEngine>(SparkOptions(64 << 10)));
    engines.push_back(std::make_unique<HiveEngine>(HiveOptions(64 << 10)));
    return engines;
  };
  auto v1_engines = make_engines("spool_fmt_v1");
  auto v2_engines = make_engines("spool_fmt_v2");
  const DataSource v1_source = *DataSource::ColumnFile(v1_path);
  const DataSource v2_source = *DataSource::ColumnFile(v2_path);
  for (auto& engine : v1_engines) {
    auto attach = engine->Attach(v1_source);
    ASSERT_TRUE(attach.ok())
        << engine->name() << ": " << attach.status().ToString();
  }
  for (auto& engine : v2_engines) {
    auto attach = engine->Attach(v2_source);
    ASSERT_TRUE(attach.ok())
        << engine->name() << ": " << attach.status().ToString();
  }

  for (core::TaskType task : core::kAllTasks) {
    const TaskOptions task_options = TaskOptions::Default(task);
    TaskResultSet baseline;
    ASSERT_TRUE(v1_engines[0]->RunTask(task_options, &baseline).ok());
    for (size_t e = 0; e < v1_engines.size(); ++e) {
      TaskResultSet over_v1;
      TaskResultSet over_v2;
      auto v1_metrics = v1_engines[e]->RunTask(task_options, &over_v1);
      auto v2_metrics = v2_engines[e]->RunTask(task_options, &over_v2);
      ASSERT_TRUE(v1_metrics.ok())
          << v1_engines[e]->name() << "/" << core::TaskName(task) << ": "
          << v1_metrics.status().ToString();
      ASSERT_TRUE(v2_metrics.ok())
          << v2_engines[e]->name() << "/" << core::TaskName(task) << ": "
          << v2_metrics.status().ToString();
      SCOPED_TRACE(std::string(v1_engines[e]->name()) + "/" +
                   std::string(core::TaskName(task)));
      // Same engine across formats, and every engine against the
      // five-way baseline: one storage change, zero result drift.
      ExpectBitIdentical(over_v2, over_v1, task);
      ExpectBitIdentical(over_v1, baseline, task);
    }
  }
}

TEST_F(PlanTest, DeltaMergedBatchMatchesRebuiltMonolithicAcrossEngines) {
  // Lambda-architecture parity pin: a base table plus live delta
  // columns, merged by the DeltaTableReader, must produce the same task
  // bits as rebuilding the monolithic column file from the full data
  // and running any of the five engines over it. The speed layer is a
  // storage change, not a semantics change.
  datagen::SeedGeneratorOptions options;
  options.num_households = kHouseholds;
  options.hours = kHoursPerYear;
  options.seed = 411;
  MeterDataset dataset = *datagen::GenerateSeedDataset(options);
  constexpr size_t kDeltaHours = 48;
  const size_t base_hours = dataset.hours() - kDeltaHours;

  // Base = the first base_hours of every series; the last two days
  // arrive through the append path, hour-major like a live feed.
  std::vector<int64_t> ids;
  std::vector<table::SeriesSlice> series;
  for (size_t i = 0; i < dataset.num_consumers(); ++i) {
    ids.push_back(dataset.consumer(i).household_id);
    series.emplace_back(dataset.consumer(i).consumption.data(), base_hours);
  }
  auto base = table::ColumnarBatch::FromSlices(
      ids, series, table::SeriesSlice(dataset.temperature().data(),
                                      base_hours));
  ASSERT_TRUE(base.ok());
  table::DeltaStore store;
  ASSERT_TRUE(store.AttachBase(*base).ok());
  for (size_t h = base_hours; h < dataset.hours(); ++h) {
    for (size_t i = 0; i < dataset.num_consumers(); ++i) {
      ASSERT_TRUE(store
                      .Append(dataset.consumer(i).household_id,
                              static_cast<int64_t>(h),
                              dataset.consumer(i).consumption[h],
                              dataset.temperature()[h])
                      .ok());
    }
  }
  table::DeltaTableReader reader(&store);
  ASSERT_TRUE(reader.Open().ok());
  auto merged = reader.NewBatch();
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->hours(), dataset.hours());

  // Batch layer: reseal the full dataset into a compressed column file.
  const std::string rebuilt_path = (*dir_ / "rebuilt.v2.smcol").string();
  ASSERT_TRUE(
      storage::ColumnFileWriter::WriteFile(dataset, rebuilt_path).ok());
  auto engines = [this]() {
    std::vector<std::unique_ptr<AnalyticsEngine>> engines;
    engines.push_back(
        std::make_unique<SystemCEngine>((*dir_ / "spool_delta").string()));
    engines.push_back(std::make_unique<MadlibEngine>());
    engines.push_back(std::make_unique<MatlabEngine>());
    engines.push_back(std::make_unique<SparkEngine>(SparkOptions(64 << 10)));
    engines.push_back(std::make_unique<HiveEngine>(HiveOptions(64 << 10)));
    return engines;
  }();
  const DataSource rebuilt_source = *DataSource::ColumnFile(rebuilt_path);
  for (auto& engine : engines) {
    auto attach = engine->Attach(rebuilt_source);
    ASSERT_TRUE(attach.ok())
        << engine->name() << ": " << attach.status().ToString();
  }

  for (core::TaskType task : core::kAllTasks) {
    const TaskOptions task_options = TaskOptions::Default(task);
    TaskResultSet over_delta;
    auto delta_metrics =
        RunTaskOverBatch(exec::QueryContext::Background(), *merged,
                         task_options, /*num_threads=*/2, &over_delta);
    ASSERT_TRUE(delta_metrics.ok())
        << "delta/" << core::TaskName(task) << ": "
        << delta_metrics.status().ToString();
    for (auto& engine : engines) {
      TaskResultSet over_rebuilt;
      auto metrics = engine->RunTask(task_options, &over_rebuilt);
      ASSERT_TRUE(metrics.ok())
          << engine->name() << "/" << core::TaskName(task) << ": "
          << metrics.status().ToString();
      SCOPED_TRACE(std::string(engine->name()) + "/" +
                   std::string(core::TaskName(task)));
      ExpectBitIdentical(over_delta, over_rebuilt, task);
    }
  }
}

// ---------------------------------------------------------------------------
// Per-stage timings
// ---------------------------------------------------------------------------

TEST_F(PlanTest, LocalPlanReportsStageRowsSummingToTaskSeconds) {
  SystemCEngine engine((*dir_ / "spool_stages").string());
  ASSERT_TRUE(engine.Attach(*DataSource::SingleCsv(single_csv_)).ok());
  TaskResultSet results;
  auto metrics =
      engine.RunTask(TaskOptions::Default(core::TaskType::kHistogram),
                     &results);
  ASSERT_TRUE(metrics.ok());
  ASSERT_EQ(metrics->stages.size(), 3u);
  EXPECT_EQ(metrics->stages[0].name, "scan");
  EXPECT_EQ(metrics->stages[1].name, "kernel");
  EXPECT_EQ(metrics->stages[2].name, "materialize");
  double sum = 0.0;
  for (const auto& stage : metrics->stages) sum += stage.seconds;
  // Wall-clock stage rows cover the whole task up to inter-stage glue.
  EXPECT_NEAR(sum, metrics->seconds, 0.3 * metrics->seconds + 0.05);
}

TEST_F(PlanTest, SimulatedPlanStageRowsSumExactly) {
  HiveEngine engine(HiveOptions(64 << 10));
  ASSERT_TRUE(engine.Attach(*DataSource::SingleCsv(single_csv_)).ok());
  TaskResultSet results;
  auto metrics = engine.RunTask(
      TaskOptions::Default(core::TaskType::kThreeLine), &results);
  ASSERT_TRUE(metrics.ok());
  ASSERT_TRUE(metrics->simulated);
  ASSERT_FALSE(metrics->stages.empty());
  // Simulated time is exactly the sum of its priced stages (the driver
  // row carries the job overhead).
  EXPECT_EQ(metrics->stages[0].name, "driver");
  double sum = 0.0;
  for (const auto& stage : metrics->stages) sum += stage.seconds;
  EXPECT_NEAR(sum, metrics->seconds, 1e-9);
}

// ---------------------------------------------------------------------------
// Plan shape goldens
// ---------------------------------------------------------------------------

TEST_F(PlanTest, SystemCPlanGolden) {
  SystemCEngine engine((*dir_ / "spool_golden").string());
  ASSERT_TRUE(engine.Attach(*DataSource::SingleCsv(single_csv_)).ok());
  auto plan = engine.BuildPlan(TaskOptions::Default(core::TaskType::kHistogram));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->DebugString(),
            "plan system-c/histogram/resident {\n"
            "  scan: scan[batch source=columnar-mmap]\n"
            "  kernel: kernel[histogram]\n"
            "  materialize: materialize\n"
            "}");
}

TEST_F(PlanTest, MadlibPlanGolden) {
  MadlibEngine engine;
  ASSERT_TRUE(engine.Attach(*DataSource::SingleCsv(single_csv_)).ok());
  auto plan =
      engine.BuildPlan(TaskOptions::Default(core::TaskType::kThreeLine));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->DebugString(),
            "plan madlib/3line/cold {\n"
            "  scan: scan[batch source=row-store]\n"
            "  kernel: kernel[3line]\n"
            "  materialize: materialize\n"
            "}");
}

TEST_F(PlanTest, MatlabPlanGolden) {
  MatlabEngine engine;
  ASSERT_TRUE(
      engine.Attach(*DataSource::PartitionedDir(*partitioned_files_)).ok());
  auto plan = engine.BuildPlan(TaskOptions::Default(core::TaskType::kPar));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->DebugString(),
            "plan matlab/par/per-file {\n"
            "  scan: scan[series source=household-files partitions=6]\n"
            "  kernel: kernel[par fused-scan]\n"
            "  materialize: materialize\n"
            "}");
}

TEST_F(PlanTest, SparkPlanGolden) {
  // A block size larger than the file keeps the split count at one, so
  // the golden stays stable.
  SparkEngine engine(SparkOptions(256 << 20));
  ASSERT_TRUE(engine.Attach(*DataSource::SingleCsv(single_csv_)).ok());
  auto plan =
      engine.BuildPlan(TaskOptions::Default(core::TaskType::kHistogram));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->DebugString(),
            "plan spark/histogram/format1 {\n"
            "  scan: scan[readings source=hdfs-rows partitions=1]\n"
            "  shuffle: shuffle[dataflow partitions=per-slot]\n"
            "  kernel: kernel[histogram]\n"
            "  materialize: materialize\n"
            "  merge: merge[sort=household_id]\n"
            "}");
}

TEST_F(PlanTest, HivePlanGoldens) {
  HiveEngine engine(HiveOptions(256 << 20));
  ASSERT_TRUE(engine.Attach(*DataSource::SingleCsv(single_csv_)).ok());
  auto udaf = engine.BuildPlan(TaskOptions::Default(core::TaskType::kPar));
  ASSERT_TRUE(udaf.ok());
  EXPECT_EQ(udaf->DebugString(),
            "plan hive/par/format1 {\n"
            "  scan: scan[readings source=hdfs-rows partitions=1]\n"
            "  shuffle: shuffle[sort-merge partitions=per-slot]\n"
            "  kernel: kernel[par]\n"
            "  materialize: materialize\n"
            "  merge: merge[sort=household_id]\n"
            "}");
  auto join =
      engine.BuildPlan(TaskOptions::Default(core::TaskType::kSimilarity));
  ASSERT_TRUE(join.ok());
  EXPECT_EQ(join->DebugString(),
            "plan hive/similarity/format1 {\n"
            "  scan: scan[readings source=hdfs-rows partitions=1]\n"
            "  shuffle: shuffle[sort-merge partitions=per-slot]\n"
            "  kernel: kernel[similarity self-join-shuffle]\n"
            "  materialize: materialize\n"
            "  merge: merge[sort=household_id]\n"
            "}");
}

// ---------------------------------------------------------------------------
// Cancellation at partition boundaries
// ---------------------------------------------------------------------------

TEST_F(PlanTest, ExpiredDeadlineAbortsPartitionedPlan) {
  MatlabEngine engine;
  ASSERT_TRUE(
      engine.Attach(*DataSource::PartitionedDir(*partitioned_files_)).ok());
  exec::QueryContext ctx;
  ctx.set_deadline(exec::QueryContext::Clock::now() -
                   std::chrono::milliseconds(1));
  TaskResultSet results;
  auto metrics = engine.RunTask(
      ctx, TaskOptions::Default(core::TaskType::kHistogram), &results);
  ASSERT_FALSE(metrics.ok());
  EXPECT_EQ(metrics.status().code(), StatusCode::kDeadlineExceeded)
      << metrics.status().ToString();
}

TEST_F(PlanTest, CancelledContextAbortsSimulatedPlan) {
  SparkEngine engine(SparkOptions(64 << 10));
  ASSERT_TRUE(engine.Attach(*DataSource::SingleCsv(single_csv_)).ok());
  exec::QueryContext ctx;
  ctx.RequestCancel();
  TaskResultSet results;
  auto metrics = engine.RunTask(
      ctx, TaskOptions::Default(core::TaskType::kThreeLine), &results);
  ASSERT_FALSE(metrics.ok());
  EXPECT_EQ(metrics.status().code(), StatusCode::kCancelled)
      << metrics.status().ToString();
}

TEST_F(PlanTest, DeadlineDuringRetryBackoffShedsCleanly) {
  // Every simulated attempt fails and the attempt budget is effectively
  // infinite, so without the stop check polled between retries this
  // query would grind through 2^30 simulated attempts per task. The
  // deadline expires while tasks are in retry backoff; the query must
  // shed promptly with kDeadlineExceeded and no partial results.
  SparkEngine::Options options = SparkOptions(64 << 10);
  options.cluster.faults.seed = 13;
  options.cluster.faults.task_failure_probability = 1.0;
  options.cluster.faults.max_task_attempts = 1 << 30;
  SparkEngine engine(options);
  ASSERT_TRUE(engine.Attach(*DataSource::SingleCsv(single_csv_)).ok());
  exec::QueryContext ctx;
  ctx.set_deadline_after(std::chrono::milliseconds(50));
  TaskResultSet results;
  auto metrics = engine.RunTask(
      ctx, TaskOptions::Default(core::TaskType::kHistogram), &results);
  ASSERT_FALSE(metrics.ok());
  EXPECT_EQ(metrics.status().code(), StatusCode::kDeadlineExceeded)
      << metrics.status().ToString();
  EXPECT_TRUE(results.empty());  // Clean shed, nothing half-merged.
}

// ---------------------------------------------------------------------------
// Row scopes and scatter-gather
// ---------------------------------------------------------------------------

TEST_F(PlanTest, ScopedPartialsGatherBitIdenticalToFullRun) {
  // The serving layer's scatter path: run each task over two disjoint
  // row slices of the same table, gather the partials through the plan
  // IR's Materialize + Merge stages, and require the result to match an
  // unscoped run bit for bit.
  SystemCEngine engine((*dir_ / "spool_scope").string());
  ASSERT_TRUE(engine.Attach(*DataSource::SingleCsv(single_csv_)).ok());
  for (core::TaskType task : core::kAllTasks) {
    SCOPED_TRACE(core::TaskName(task));
    TaskResultSet baseline;
    ASSERT_TRUE(engine.RunTask(TaskOptions::Default(task), &baseline).ok());

    std::vector<TaskResultSet> partials(2);
    TaskOptions low = TaskOptions::Default(task);
    low.set_scope({0, kHouseholds / 2});
    ASSERT_TRUE(engine.RunTask(low, &partials[0]).ok());
    TaskOptions high = TaskOptions::Default(task);
    high.set_scope({kHouseholds / 2, 0});  // count 0 = through the last row.
    ASSERT_TRUE(engine.RunTask(high, &partials[1]).ok());
    ASSERT_EQ(partials[0].size() + partials[1].size(), baseline.size());

    TaskResultSet gathered;
    exec::PlanExecutor executor;
    auto metrics =
        executor.RunGather(exec::QueryContext::Background(),
                           std::move(partials),
                           /*sort_by_household=*/true, &gathered);
    ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
    ASSERT_EQ(metrics->stages.size(), 2u);
    EXPECT_EQ(metrics->stages[0].name, "materialize");
    EXPECT_EQ(metrics->stages[1].name, "merge");
    ExpectBitIdentical(gathered, baseline, task);
  }
}

TEST_F(PlanTest, ScopedKernelRendersScopeInPlanGolden) {
  SystemCEngine engine((*dir_ / "spool_scope_golden").string());
  ASSERT_TRUE(engine.Attach(*DataSource::SingleCsv(single_csv_)).ok());
  TaskOptions options = TaskOptions::Default(core::TaskType::kHistogram);
  options.set_scope({3, 0});
  auto plan = engine.BuildPlan(options);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->DebugString().find("kernel[histogram scope=3+rest]"),
            std::string::npos)
      << plan->DebugString();
}

TEST_F(PlanTest, SeriesPlanRejectsRowScope) {
  // The per-file series path re-partitions by household and loses row
  // positions, so a scoped request must be rejected, not half-honored.
  MatlabEngine engine;
  ASSERT_TRUE(
      engine.Attach(*DataSource::PartitionedDir(*partitioned_files_)).ok());
  TaskOptions options = TaskOptions::Default(core::TaskType::kHistogram);
  options.set_scope({0, 3});
  TaskResultSet results;
  auto metrics = engine.RunTask(options, &results);
  ASSERT_FALSE(metrics.ok());
  EXPECT_EQ(metrics.status().code(), StatusCode::kNotSupported)
      << metrics.status().ToString();
}

TEST_F(PlanTest, GatherSkipsEmptyPartials) {
  // A shard whose slice is empty contributes a monostate partial; the
  // gather must pass it through without disturbing the merged order.
  SystemCEngine engine((*dir_ / "spool_gather_empty").string());
  ASSERT_TRUE(engine.Attach(*DataSource::SingleCsv(single_csv_)).ok());
  TaskResultSet baseline;
  ASSERT_TRUE(
      engine.RunTask(TaskOptions::Default(core::TaskType::kHistogram),
                     &baseline)
          .ok());
  std::vector<TaskResultSet> partials(3);  // [0] and [2] stay monostate.
  ASSERT_TRUE(
      engine.RunTask(TaskOptions::Default(core::TaskType::kHistogram),
                     &partials[1])
          .ok());
  TaskResultSet gathered;
  exec::PlanExecutor executor;
  auto metrics = executor.RunGather(exec::QueryContext::Background(),
                                    std::move(partials),
                                    /*sort_by_household=*/true, &gathered);
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  ExpectBitIdentical(gathered, baseline, core::TaskType::kHistogram);
}

}  // namespace
}  // namespace smartmeter::engines
