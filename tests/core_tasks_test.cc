#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/histogram_task.h"
#include "core/par_task.h"
#include "core/similarity_task.h"
#include "core/three_line_task.h"
#include "datagen/temperature_model.h"
#include "timeseries/calendar.h"

namespace smartmeter::core {
namespace {

// ---------------------------------------------------------------------------
// Synthetic consumers with known ground truth
// ---------------------------------------------------------------------------

struct SyntheticConsumer {
  std::vector<double> consumption;
  std::vector<double> temperature;
};

/// A consumer with an exactly known thermal response:
///   load = base + heat_g * max(0, heat_bal - T) + cool_g * max(0, T - cool_bal)
///        + activity(hour) + noise
SyntheticConsumer MakeThermalConsumer(double base, double heat_gradient,
                                      double heat_balance,
                                      double cool_gradient,
                                      double cool_balance,
                                      double noise_sigma, uint64_t seed) {
  datagen::TemperatureModelOptions temp_options;
  temp_options.seed = seed;
  SyntheticConsumer consumer;
  consumer.temperature =
      datagen::GenerateTemperatureSeries(kHoursPerYear, temp_options);
  Rng rng(seed + 1);
  consumer.consumption.reserve(kHoursPerYear);
  for (int t = 0; t < kHoursPerYear; ++t) {
    const double temp = consumer.temperature[static_cast<size_t>(t)];
    const double heating = heat_gradient * std::max(0.0, heat_balance - temp);
    const double cooling = cool_gradient * std::max(0.0, temp - cool_balance);
    const double noise = noise_sigma * rng.NextDouble();  // One-sided.
    consumer.consumption.push_back(base + heating + cooling + noise);
  }
  return consumer;
}

// ---------------------------------------------------------------------------
// Histogram task
// ---------------------------------------------------------------------------

TEST(HistogramTaskTest, DefaultIsTenBuckets) {
  std::vector<double> v(100);
  for (size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  auto hist = ComputeConsumptionHistogram(v);
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(hist->counts.size(), 10u);
  EXPECT_EQ(hist->TotalCount(), 100);
}

TEST(HistogramTaskTest, YearOfDataCountsEveryHour) {
  Rng rng(2);
  std::vector<double> v(kHoursPerYear);
  for (double& x : v) x = rng.Uniform(0, 4);
  auto hist = ComputeConsumptionHistogram(v);
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(hist->TotalCount(), kHoursPerYear);
}

// ---------------------------------------------------------------------------
// 3-line task
// ---------------------------------------------------------------------------

TEST(ThreeLineTaskTest, RecoversGradientsAndBaseLoad) {
  // Heating 0.15 kWh/C below 12C, cooling 0.10 kWh/C above 20C,
  // base 0.4 kWh, modest noise.
  const SyntheticConsumer c = MakeThermalConsumer(
      0.4, 0.15, 12.0, 0.10, 20.0, 0.05, /*seed=*/7);
  auto result = ComputeThreeLine(c.consumption, c.temperature, 1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NEAR(result->heating_gradient, 0.15, 0.03);
  EXPECT_NEAR(result->cooling_gradient, 0.10, 0.03);
  EXPECT_NEAR(result->base_load, 0.4, 0.08);
}

TEST(ThreeLineTaskTest, FlatConsumerHasNoGradients) {
  const SyntheticConsumer c = MakeThermalConsumer(
      0.5, 0.0, 12.0, 0.0, 20.0, 0.02, /*seed=*/11);
  auto result = ComputeThreeLine(c.consumption, c.temperature, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->heating_gradient, 0.0, 0.01);
  EXPECT_NEAR(result->cooling_gradient, 0.0, 0.01);
  EXPECT_NEAR(result->base_load, 0.5, 0.03);
}

TEST(ThreeLineTaskTest, PiecewiseModelIsContinuous) {
  const SyntheticConsumer c = MakeThermalConsumer(
      0.3, 0.2, 13.0, 0.12, 19.0, 0.1, /*seed=*/13);
  auto result = ComputeThreeLine(c.consumption, c.temperature, 1);
  ASSERT_TRUE(result.ok());
  for (const PiecewiseLines* lines : {&result->p90, &result->p10}) {
    const double t1 = lines->left.t_high;
    const double t2 = lines->mid.t_high;
    EXPECT_NEAR(lines->left.ValueAt(t1), lines->mid.ValueAt(t1), 1e-9);
    EXPECT_NEAR(lines->mid.ValueAt(t2), lines->right.ValueAt(t2), 1e-9);
    EXPECT_LT(lines->left.t_low, t1);
    EXPECT_LT(t1, t2);
    EXPECT_LT(t2, lines->right.t_high);
  }
}

TEST(ThreeLineTaskTest, P90DominatesP10) {
  const SyntheticConsumer c = MakeThermalConsumer(
      0.3, 0.15, 12.0, 0.1, 20.0, 0.3, /*seed=*/17);
  auto result = ComputeThreeLine(c.consumption, c.temperature, 1);
  ASSERT_TRUE(result.ok());
  // Evaluate both bands across the range: the 90th percentile band must
  // sit above the 10th.
  for (double t = -10; t <= 30; t += 2.5) {
    EXPECT_GE(result->p90.ValueAt(t), result->p10.ValueAt(t) - 1e-6) << t;
  }
}

TEST(ThreeLineTaskTest, PhaseTimesAccumulate) {
  const SyntheticConsumer c = MakeThermalConsumer(
      0.4, 0.1, 12.0, 0.1, 20.0, 0.05, /*seed=*/19);
  ThreeLinePhases phases;
  ASSERT_TRUE(
      ComputeThreeLine(c.consumption, c.temperature, 1, {}, &phases).ok());
  EXPECT_GT(phases.quantile_seconds, 0.0);
  EXPECT_GT(phases.regression_seconds, 0.0);
  EXPECT_GE(phases.adjust_seconds, 0.0);
}

TEST(ThreeLineTaskTest, SkewedInputNeverReallocatesBandVectors) {
  // A near-constant consumer is the pathological case for the old
  // size()/8 reserve heuristic: almost every reading sits at or beyond
  // both percentile thresholds, so both bands hold close to ALL of the
  // readings and the vectors regrew repeatedly. The counting pass sizes
  // them exactly; the phases counter proves it.
  std::vector<double> consumption, temperature;
  Rng rng(31);
  for (int i = 0; i < 3000; ++i) {
    temperature.push_back(rng.Uniform(0.0, 10.0));
    consumption.push_back(1.0);  // Constant: p10 == p90 == 1.0.
  }
  ThreeLinePhases phases;
  auto result =
      ComputeThreeLine(consumption, temperature, 1, {}, &phases);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(phases.band_reallocs, 0u);
  // Every reading is in both bands: 2 * 3000 band points.
  EXPECT_EQ(phases.band_points, 6000u);
}

TEST(ThreeLineTaskTest, JunkTemperaturesAreIgnored) {
  // NaN / infinite temperatures used to hit an undefined float->int
  // cast in the binning; now they saturate into a sentinel bin that
  // never defines thresholds, so the fit just ignores them.
  SyntheticConsumer c = MakeThermalConsumer(
      0.4, 0.1, 12.0, 0.1, 20.0, 0.05, /*seed=*/41);
  c.temperature[10] = std::numeric_limits<double>::quiet_NaN();
  c.temperature[20] = std::numeric_limits<double>::infinity();
  c.temperature[30] = -std::numeric_limits<double>::infinity();
  auto result = ComputeThreeLine(c.consumption, c.temperature, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::isfinite(result->heating_gradient));
  EXPECT_TRUE(std::isfinite(result->cooling_gradient));
}

TEST(ThreeLineTaskTest, RejectsDegenerateInput) {
  EXPECT_FALSE(ComputeThreeLine({}, {}, 1).ok());
  const std::vector<double> c = {1.0, 2.0};
  const std::vector<double> t = {1.0};
  EXPECT_FALSE(ComputeThreeLine(c, t, 1).ok());
  // Single temperature bin cannot support three lines.
  const std::vector<double> c2(100, 1.0);
  const std::vector<double> t2(100, 5.0);
  EXPECT_FALSE(ComputeThreeLine(c2, t2, 1).ok());
}

TEST(ThreeLineTaskTest, MinPointsPerBinFiltersSparseBins) {
  // 30 readings spread over 3 bins + 1 outlier reading at T=50.
  std::vector<double> consumption, temperature;
  Rng rng(23);
  for (int bin = 0; bin < 6; ++bin) {
    for (int i = 0; i < 30; ++i) {
      temperature.push_back(bin * 2.0 + 0.3);
      consumption.push_back(1.0 + rng.NextDouble() * 0.1);
    }
  }
  temperature.push_back(50.0);
  consumption.push_back(99.0);
  ThreeLineOptions options;
  options.min_points_per_bin = 5;
  options.temperature_bin_width = 2.0;
  auto result = ComputeThreeLine(consumption, temperature, 1, options);
  ASSERT_TRUE(result.ok());
  // The outlier bin was dropped: the fitted range ends well below 50 C.
  EXPECT_LT(result->p90.right.t_high, 20.0);
}

// ---------------------------------------------------------------------------
// PAR (daily profile) task
// ---------------------------------------------------------------------------

TEST(ParTaskTest, RecoversActivityProfileShape) {
  // A consumer whose temperature-independent load is a fixed 24-hour
  // pattern; temperature effect is linear with known coefficient.
  datagen::TemperatureModelOptions temp_options;
  temp_options.seed = 31;
  const std::vector<double> temperature =
      datagen::GenerateTemperatureSeries(kHoursPerYear, temp_options);
  std::vector<double> profile(24);
  for (int h = 0; h < 24; ++h) {
    profile[static_cast<size_t>(h)] =
        1.0 + 0.5 * std::sin(2.0 * M_PI * h / 24.0);
  }
  const double temp_beta = 0.02;
  Rng rng(37);
  std::vector<double> consumption(kHoursPerYear);
  for (int t = 0; t < kHoursPerYear; ++t) {
    consumption[static_cast<size_t>(t)] =
        profile[static_cast<size_t>(t % 24)] +
        temp_beta * temperature[static_cast<size_t>(t)] +
        rng.Gaussian(0.0, 0.02);
  }
  auto result = ComputeDailyProfile(consumption, temperature, 1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->profile.size(), 24u);
  for (int h = 0; h < 24; ++h) {
    EXPECT_NEAR(result->profile[static_cast<size_t>(h)],
                profile[static_cast<size_t>(h)], 0.06)
        << "hour " << h;
    EXPECT_NEAR(result->temperature_beta[static_cast<size_t>(h)], temp_beta,
                0.01)
        << "hour " << h;
  }
}

TEST(ParTaskTest, CoefficientLayoutMatchesOptions) {
  const SyntheticConsumer c = MakeThermalConsumer(
      0.5, 0.1, 12.0, 0.05, 20.0, 0.05, /*seed=*/41);
  ParOptions options;
  options.lags = 3;
  auto result = ComputeDailyProfile(c.consumption, c.temperature, 9,
                                    options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->household_id, 9);
  ASSERT_EQ(result->coefficients.size(), 24u);
  for (const auto& coeffs : result->coefficients) {
    EXPECT_EQ(coeffs.size(), 5u);  // intercept + 3 lags + temperature.
  }
}

TEST(ParTaskTest, ClampsNegativeProfileValues) {
  // Strong negative temperature effect on a tiny base can push the naive
  // profile negative; clamping keeps it at zero.
  const std::vector<double> temperature(24 * 30, 25.0);
  std::vector<double> consumption(24 * 30, 0.01);
  auto result = ComputeDailyProfile(consumption, temperature, 1);
  ASSERT_TRUE(result.ok());
  for (double v : result->profile) EXPECT_GE(v, 0.0);
}

TEST(ParTaskTest, RejectsTooLittleData) {
  const std::vector<double> shorty(24 * 4, 1.0);
  EXPECT_FALSE(ComputeDailyProfile(shorty, shorty, 1).ok());
  const std::vector<double> c(48, 1.0);
  const std::vector<double> t(24, 1.0);
  EXPECT_FALSE(ComputeDailyProfile(c, t, 1).ok());
}

TEST(ParTaskTest, LagCountValidated) {
  const std::vector<double> v(kHoursPerYear, 1.0);
  ParOptions options;
  options.lags = 0;
  EXPECT_FALSE(ComputeDailyProfile(v, v, 1, options).ok());
}

// ---------------------------------------------------------------------------
// Similarity task
// ---------------------------------------------------------------------------

std::vector<SeriesView> MakeViews(
    const std::vector<std::pair<int64_t, std::vector<double>>>& data) {
  std::vector<SeriesView> views;
  views.reserve(data.size());
  for (const auto& [id, series] : data) {
    views.push_back({id, series});
  }
  return views;
}

TEST(SimilarityTaskTest, FindsParallelSeries) {
  const std::vector<std::pair<int64_t, std::vector<double>>> data = {
      {1, {1.0, 2.0, 3.0}},
      {2, {2.0, 4.0, 6.0}},   // Parallel to 1.
      {3, {3.0, 2.0, 1.0}},   // Reversed.
      {4, {-1.0, -2.0, -3.0}},  // Anti-parallel to 1.
  };
  SimilarityOptions options;
  options.k = 1;
  auto results = ComputeSimilarityTopK(MakeViews(data), options);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 4u);
  EXPECT_EQ((*results)[0].household_id, 1);
  ASSERT_EQ((*results)[0].matches.size(), 1u);
  EXPECT_EQ((*results)[0].matches[0].household_id, 2);
  EXPECT_NEAR((*results)[0].matches[0].cosine, 1.0, 1e-12);
  EXPECT_EQ((*results)[1].matches[0].household_id, 1);
}

TEST(SimilarityTaskTest, SelfIsExcluded) {
  const std::vector<std::pair<int64_t, std::vector<double>>> data = {
      {1, {1.0, 0.0}}, {2, {0.0, 1.0}}, {3, {1.0, 1.0}}};
  auto results = ComputeSimilarityTopK(MakeViews(data));
  ASSERT_TRUE(results.ok());
  for (const auto& r : *results) {
    for (const auto& m : r.matches) {
      EXPECT_NE(m.household_id, r.household_id);
    }
  }
}

TEST(SimilarityTaskTest, KCapsMatchCount) {
  Rng rng(43);
  std::vector<std::pair<int64_t, std::vector<double>>> data;
  for (int i = 0; i < 20; ++i) {
    std::vector<double> v(8);
    for (double& x : v) x = rng.Gaussian(0, 1);
    data.emplace_back(i, std::move(v));
  }
  SimilarityOptions options;
  options.k = 10;
  auto results = ComputeSimilarityTopK(MakeViews(data), options);
  ASSERT_TRUE(results.ok());
  for (const auto& r : *results) {
    EXPECT_EQ(r.matches.size(), 10u);
    // Matches sorted best-first.
    for (size_t i = 1; i < r.matches.size(); ++i) {
      EXPECT_GE(r.matches[i - 1].cosine, r.matches[i].cosine);
    }
  }
}

TEST(SimilarityTaskTest, RangeMatchesFull) {
  Rng rng(47);
  std::vector<std::pair<int64_t, std::vector<double>>> data;
  for (int i = 0; i < 12; ++i) {
    std::vector<double> v(16);
    for (double& x : v) x = rng.Gaussian(0, 1);
    data.emplace_back(100 + i, std::move(v));
  }
  const auto views = MakeViews(data);
  const std::vector<double> norms = ComputeNorms(views);
  auto full = ComputeSimilarityTopK(views);
  ASSERT_TRUE(full.ok());
  auto part1 = ComputeSimilarityTopKRange(views, norms, 0, 6, {});
  auto part2 = ComputeSimilarityTopKRange(views, norms, 6, 12, {});
  ASSERT_TRUE(part1.ok());
  ASSERT_TRUE(part2.ok());
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ((*part1)[i].matches[0].household_id,
              (*full)[i].matches[0].household_id);
    EXPECT_EQ((*part2)[i].matches[0].household_id,
              (*full)[i + 6].matches[0].household_id);
  }
}

TEST(SimilarityTaskTest, RejectsBadInput) {
  EXPECT_FALSE(ComputeSimilarityTopK({}).ok());
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {1.0};
  std::vector<SeriesView> views = {{1, a}, {2, b}};
  EXPECT_FALSE(ComputeSimilarityTopK(views).ok());
  std::vector<SeriesView> ok_views = {{1, a}, {2, a}};
  SimilarityOptions options;
  options.k = 0;
  EXPECT_FALSE(ComputeSimilarityTopK(ok_views, options).ok());
}

// Property sweep: the 3-line model recovers known thermal parameters
// across a grid of gradient / balance-point / noise configurations.
struct ThermalCase {
  double heat_g, heat_bal, cool_g, cool_bal, noise;
};

class ThreeLineRecoveryTest
    : public ::testing::TestWithParam<ThermalCase> {};

TEST_P(ThreeLineRecoveryTest, RecoversConfiguredThermalResponse) {
  const ThermalCase& tc = GetParam();
  const SyntheticConsumer c = MakeThermalConsumer(
      0.35, tc.heat_g, tc.heat_bal, tc.cool_g, tc.cool_bal, tc.noise,
      /*seed=*/static_cast<uint64_t>(tc.heat_g * 1000 + tc.cool_g * 100 +
                                     tc.noise * 10 + 3));
  auto result = ComputeThreeLine(c.consumption, c.temperature, 1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const double tol = 0.02 + tc.noise / 2.0;
  EXPECT_NEAR(result->heating_gradient, tc.heat_g, tol);
  EXPECT_NEAR(result->cooling_gradient, tc.cool_g, tol);
  EXPECT_NEAR(result->base_load, 0.35, 0.1 + tc.noise);
}

INSTANTIATE_TEST_SUITE_P(
    ThermalGrid, ThreeLineRecoveryTest,
    ::testing::Values(ThermalCase{0.05, 12, 0.05, 20, 0.02},
                      ThermalCase{0.20, 10, 0.05, 22, 0.02},
                      ThermalCase{0.05, 14, 0.20, 18, 0.02},
                      ThermalCase{0.15, 12, 0.15, 20, 0.05},
                      ThermalCase{0.10, 8, 0.02, 24, 0.02},
                      ThermalCase{0.25, 13, 0.10, 19, 0.10},
                      ThermalCase{0.02, 12, 0.02, 20, 0.02},
                      ThermalCase{0.30, 11, 0.25, 21, 0.05}));

TEST(TaskTypesTest, NamesAreStable) {
  EXPECT_EQ(TaskName(TaskType::kHistogram), "histogram");
  EXPECT_EQ(TaskName(TaskType::kThreeLine), "3line");
  EXPECT_EQ(TaskName(TaskType::kPar), "par");
  EXPECT_EQ(TaskName(TaskType::kSimilarity), "similarity");
}

}  // namespace
}  // namespace smartmeter::core
