// Seed-replay scenario fuzzer: randomized cluster/workload configs run
// through all five engines, asserting result parity, plan invariants,
// and seed-determinism of the simulated cost. A failing random seed is
// written as a replayable scenario file and its path printed, so CI can
// upload it and a developer can replay (and commit) it.
//
// Environment knobs (all optional):
//   SM_FUZZ_SEEDS      number of random scenarios to run (default 5)
//   SM_FUZZ_SEED       base seed; scenario i uses base + i (default 20260808)
//   SM_FUZZ_REPLAY_DIR where failing seeds are written (default: temp dir)

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/scenario.h"

namespace smartmeter::scenario {
namespace {

namespace fs = std::filesystem;

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoll(value, nullptr, 10);
}

std::string ReplayDir() {
  const char* dir = std::getenv("SM_FUZZ_REPLAY_DIR");
  if (dir != nullptr && *dir != '\0') return dir;
  return (fs::path(::testing::TempDir()) / "scenario_replay").string();
}

std::string Workdir(const std::string& leaf) {
  return (fs::path(::testing::TempDir()) / "scenario_fuzz" / leaf).string();
}

/// Runs one scenario; on violation writes the replay seed file and fails
/// with its path in the message.
void RunAndCheck(const ScenarioSpec& spec, const std::string& label) {
  Result<ScenarioOutcome> outcome = RunScenario(spec, Workdir(label));
  ASSERT_TRUE(outcome.ok()) << label << ": infrastructure failure: "
                            << outcome.status().ToString();
  if (outcome->ok()) return;
  const std::string replay_dir = ReplayDir();
  std::error_code ec;
  fs::create_directories(replay_dir, ec);
  const std::string replay_path =
      (fs::path(replay_dir) / (label + ".scenario")).string();
  const Status written = spec.WriteSeedFile(replay_path);
  FAIL() << label << ": " << outcome->violation << "\n  replay file: "
         << (written.ok() ? replay_path : written.ToString())
         << "\n  rerun: SM_FUZZ_REPLAY=" << replay_path;
}

TEST(ScenarioSeedText, RoundTripsExactly) {
  for (uint64_t seed : {1ull, 42ull, 0xDEADBEEFull}) {
    const ScenarioSpec spec = ScenarioSpec::Random(seed);
    const std::string text = spec.ToSeedText();
    Result<ScenarioSpec> parsed = ScenarioSpec::FromSeedText(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    // Full-precision text form must invert exactly, float bits included.
    EXPECT_EQ(parsed->ToSeedText(), text) << "seed " << seed;
  }
}

TEST(ScenarioSeedText, RejectsMalformedInput) {
  EXPECT_FALSE(ScenarioSpec::FromSeedText("seed").ok());
  EXPECT_FALSE(ScenarioSpec::FromSeedText("no_such_key=1\n").ok());
  EXPECT_FALSE(ScenarioSpec::FromSeedText("task=bogus\n").ok());
  EXPECT_FALSE(ScenarioSpec::FromSeedText("layout=bogus\n").ok());
}

TEST(ScenarioSeedText, SeedFileRoundTrips) {
  const ScenarioSpec spec = ScenarioSpec::Random(7);
  const std::string dir = Workdir("seedfile");
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string path = dir + "/case.scenario";
  ASSERT_TRUE(spec.WriteSeedFile(path).ok());
  Result<ScenarioSpec> loaded = ScenarioSpec::ReadSeedFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->ToSeedText(), spec.ToSeedText());
}

TEST(ScenarioGenerator, NeverProducesRejectedCombination) {
  for (uint64_t seed = 0; seed < 500; ++seed) {
    const ScenarioSpec spec = ScenarioSpec::Random(seed);
    EXPECT_FALSE(
        spec.task == core::TaskType::kSimilarity &&
        spec.cluster_layout == ScenarioSpec::ClusterLayout::kWholeFileDir)
        << "seed " << seed;
    EXPECT_GE(spec.nodes, 1) << "seed " << seed;
    EXPECT_GE(spec.slots_per_node, 1) << "seed " << seed;
    EXPECT_GE(spec.block_bytes, 1) << "seed " << seed;
    EXPECT_LE(spec.straggler_multiplier_min, spec.straggler_multiplier_max)
        << "seed " << seed;
  }
}

/// The committed corpus: every file must keep passing (regression cases
/// and coverage anchors for each fault class).
TEST(ScenarioCorpus, AllCasesHold) {
  const fs::path corpus_dir(SM_SCENARIO_CORPUS_DIR);
  std::vector<fs::path> cases;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(corpus_dir)) {
    if (entry.path().extension() == ".scenario") {
      cases.push_back(entry.path());
    }
  }
  ASSERT_FALSE(cases.empty()) << "no corpus files in " << corpus_dir;
  for (const fs::path& path : cases) {
    SCOPED_TRACE(path.string());
    Result<ScenarioSpec> spec = ScenarioSpec::ReadSeedFile(path.string());
    ASSERT_TRUE(spec.ok()) << spec.status().ToString();
    RunAndCheck(*spec, "corpus_" + path.stem().string());
    if (::testing::Test::HasFatalFailure()) return;
  }
}

/// Replays a single scenario file (the one a failed fuzz run printed).
TEST(ScenarioReplay, ReplaysFileFromEnv) {
  const char* path = std::getenv("SM_FUZZ_REPLAY");
  if (path == nullptr || *path == '\0') {
    GTEST_SKIP() << "SM_FUZZ_REPLAY not set";
  }
  Result<ScenarioSpec> spec = ScenarioSpec::ReadSeedFile(path);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  RunAndCheck(*spec, "replay");
}

/// The fuzzer proper: SM_FUZZ_SEEDS random scenarios derived from
/// SM_FUZZ_SEED. CI derives the base seed from the run id so every run
/// explores new ground while staying replayable from the log line.
TEST(ScenarioFuzz, RandomScenariosHold) {
  const int64_t count = EnvInt("SM_FUZZ_SEEDS", 5);
  const uint64_t base =
      static_cast<uint64_t>(EnvInt("SM_FUZZ_SEED", 20260808));
  std::printf("scenario fuzz: %lld seeds from base %llu\n",
              static_cast<long long>(count),
              static_cast<unsigned long long>(base));
  for (int64_t i = 0; i < count; ++i) {
    const uint64_t seed = base + static_cast<uint64_t>(i);
    const ScenarioSpec spec = ScenarioSpec::Random(seed);
    RunAndCheck(spec, "seed_" + std::to_string(seed));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace smartmeter::scenario
