#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/block_store.h"
#include "datagen/seed_generator.h"
#include "engines/engine_factory.h"
#include "engines/hive_engine.h"
#include "engines/madlib_engine.h"
#include "engines/matlab_engine.h"
#include "engines/spark_engine.h"
#include "engines/systemc_engine.h"
#include "obs/metrics.h"
#include "storage/csv.h"
#include "storage/row_store.h"
#include "table/columnar_batch.h"
#include "table/columnar_cache.h"
#include "table/data_source.h"
#include "table/table_reader.h"
#include "timeseries/calendar.h"

namespace smartmeter {
namespace {

namespace fs = std::filesystem;

int64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->Value();
}

/// Bit-exact equality between two batch views: same households, same
/// consumption doubles, same temperature column. This is the data-plane
/// guarantee — every storage backend feeds the kernels identical bytes.
void ExpectBatchesBitExact(const table::ColumnarBatch& got,
                           const table::ColumnarBatch& want,
                           const char* label) {
  ASSERT_EQ(got.count(), want.count()) << label;
  ASSERT_EQ(got.hours(), want.hours()) << label;
  for (size_t i = 0; i < got.count(); ++i) {
    ASSERT_EQ(got.household_id(i), want.household_id(i))
        << label << " household index " << i;
    const table::SeriesSlice a = got.consumption(i);
    const table::SeriesSlice b = want.consumption(i);
    ASSERT_EQ(a.size(), b.size());
    for (size_t h = 0; h < a.size(); ++h) {
      ASSERT_EQ(a[h], b[h]) << label << " household " << got.household_id(i)
                            << " hour " << h;
    }
  }
  const table::SeriesSlice ta = got.temperature();
  const table::SeriesSlice tb = want.temperature();
  ASSERT_EQ(ta.size(), tb.size()) << label;
  for (size_t h = 0; h < ta.size(); ++h) {
    ASSERT_EQ(ta[h], tb[h]) << label << " temperature hour " << h;
  }
}

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) / "table_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  static MeterDataset SmallDataset(int households, size_t hours,
                                   uint64_t seed) {
    datagen::SeedGeneratorOptions options;
    options.num_households = households;
    options.hours = hours;
    options.seed = seed;
    auto dataset = datagen::GenerateSeedDataset(options);
    EXPECT_TRUE(dataset.ok());
    return std::move(*dataset);
  }

  fs::path dir_;
};

// ---------------------------------------------------------------------------
// Storage round-trip parity (satellite: bit-exact across every backend)
// ---------------------------------------------------------------------------

TEST_F(TableTest, AllBackendsYieldBitExactSeriesViews) {
  const MeterDataset dataset = SmallDataset(6, 7 * 24, 91);
  const std::string csv_path = (dir_ / "data.csv").string();
  ASSERT_TRUE(storage::WriteReadingsCsv(dataset, csv_path).ok());
  auto source = table::DataSource::SingleCsv(csv_path);
  ASSERT_TRUE(source.ok());

  // Reference: the plain CSV parse.
  table::CsvTableReader csv_reader(*source);
  ASSERT_TRUE(csv_reader.Open().ok());
  auto csv_batch = csv_reader.NewBatch();
  ASSERT_TRUE(csv_batch.ok());
  ASSERT_FALSE(csv_batch->contiguous());

  // Columnar cache (cold build then mmap).
  table::ColumnarCache cache((dir_ / "cache").string());
  auto cached_reader = cache.OpenOrBuild(*source);
  ASSERT_TRUE(cached_reader.ok()) << cached_reader.status().ToString();
  auto cached_batch = (*cached_reader)->NewBatch();
  ASSERT_TRUE(cached_batch.ok());
  ASSERT_TRUE(cached_batch->contiguous());
  ExpectBatchesBitExact(*cached_batch, *csv_batch, "columnar-cache");

  // Row store (heap file + B+-tree) loaded from the same CSV.
  storage::RowStore row_store((dir_ / "rows.heap").string());
  ASSERT_TRUE(row_store.LoadFromCsv(csv_path).ok());
  ASSERT_TRUE(row_store.FinishLoad().ok());
  table::RowStoreReader row_reader(&row_store);
  ASSERT_TRUE(row_reader.Open().ok());
  auto row_batch = row_reader.NewBatch();
  ASSERT_TRUE(row_batch.ok());
  ExpectBatchesBitExact(*row_batch, *csv_batch, "row-store");

  // Array store serialized from the parsed dataset.
  storage::ArrayStore array_store((dir_ / "rows.array").string());
  ASSERT_TRUE(array_store.LoadFromDataset(csv_reader.dataset()).ok());
  table::ArrayStoreReader array_reader(&array_store);
  ASSERT_TRUE(array_reader.Open().ok());
  auto array_batch = array_reader.NewBatch();
  ASSERT_TRUE(array_batch.ok());
  ExpectBatchesBitExact(*array_batch, *csv_batch, "array-store");

  // Simulated-HDFS block store over the same file.
  cluster::BlockStore block_store(/*num_nodes=*/3, /*block_bytes=*/4 << 10);
  ASSERT_TRUE(block_store.AddFile(csv_path).ok());
  table::BlockStoreReader block_reader(&block_store, /*splittable=*/true);
  ASSERT_TRUE(block_reader.Open().ok());
  auto block_batch = block_reader.NewBatch();
  ASSERT_TRUE(block_batch.ok());
  ExpectBatchesBitExact(*block_batch, *csv_batch, "block-store");

  // Borrowed in-memory dataset.
  table::DatasetReader dataset_reader(&csv_reader.dataset());
  ASSERT_TRUE(dataset_reader.Open().ok());
  auto dataset_batch = dataset_reader.NewBatch();
  ASSERT_TRUE(dataset_batch.ok());
  ExpectBatchesBitExact(*dataset_batch, *csv_batch, "dataset");
}

// ---------------------------------------------------------------------------
// Columnar cache behaviour
// ---------------------------------------------------------------------------

TEST_F(TableTest, CacheMissesThenHits) {
  const MeterDataset dataset = SmallDataset(4, 48, 7);
  const std::string csv_path = (dir_ / "data.csv").string();
  ASSERT_TRUE(storage::WriteReadingsCsv(dataset, csv_path).ok());
  auto source = table::DataSource::SingleCsv(csv_path);
  ASSERT_TRUE(source.ok());

  table::ColumnarCache cache((dir_ / "cache").string());
  const int64_t misses_before = CounterValue("table.cache.misses");
  const int64_t hits_before = CounterValue("table.cache.hits");

  auto cold = cache.OpenOrBuild(*source);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(CounterValue("table.cache.misses"), misses_before + 1);
  EXPECT_EQ(CounterValue("table.cache.hits"), hits_before);

  auto warm = cache.OpenOrBuild(*source);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(CounterValue("table.cache.misses"), misses_before + 1);
  EXPECT_EQ(CounterValue("table.cache.hits"), hits_before + 1);

  auto cold_batch = (*cold)->NewBatch();
  auto warm_batch = (*warm)->NewBatch();
  ASSERT_TRUE(cold_batch.ok());
  ASSERT_TRUE(warm_batch.ok());
  ExpectBatchesBitExact(*warm_batch, *cold_batch, "warm-vs-cold");
}

TEST_F(TableTest, CacheKeyTracksSourceIdentity) {
  const MeterDataset dataset = SmallDataset(4, 48, 7);
  const std::string csv_path = (dir_ / "data.csv").string();
  ASSERT_TRUE(storage::WriteReadingsCsv(dataset, csv_path).ok());
  auto source = table::DataSource::SingleCsv(csv_path);
  ASSERT_TRUE(source.ok());

  table::ColumnarCache cache((dir_ / "cache").string());
  auto first = cache.CacheFilePath(*source);
  ASSERT_TRUE(first.ok());

  // Rewriting the source with different contents (different byte size)
  // must map to a different cache entry; the stale one is never read.
  const MeterDataset bigger = SmallDataset(5, 48, 8);
  ASSERT_TRUE(storage::WriteReadingsCsv(bigger, csv_path).ok());
  auto second = cache.CacheFilePath(*source);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(*first, *second);
}

TEST_F(TableTest, CacheKeyChangesOnSameSizeSameMtimeRewrite) {
  // Filesystem mtimes can tick in whole seconds: a source regenerated
  // within one tick keeps the same path, size, AND mtime, which the old
  // key collapsed to the stale entry. Simulate the tick deterministically
  // by rewriting same-length content and pinning the timestamp back.
  const std::string csv_path = (dir_ / "tick.csv").string();
  const auto write_file = [&csv_path](const std::string& body) {
    FILE* f = fopen(csv_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fputs(body.c_str(), f);
    fclose(f);
  };
  const std::string before = "1,0,1.0000,10.00\n1,1,2.0000,11.00\n";
  const std::string after = "1,0,3.0000,10.00\n1,1,4.0000,11.00\n";
  ASSERT_EQ(before.size(), after.size());
  write_file(before);
  auto source = table::DataSource::SingleCsv(csv_path);
  ASSERT_TRUE(source.ok());
  table::ColumnarCache cache((dir_ / "cache").string());
  const fs::file_time_type mtime = fs::last_write_time(csv_path);
  auto first = cache.CacheFilePath(*source);
  ASSERT_TRUE(first.ok());

  write_file(after);
  fs::last_write_time(csv_path, mtime);
  auto second = cache.CacheFilePath(*source);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(*first, *second);
}

TEST_F(TableTest, ColumnFileReaderRejectsCorruptFile) {
  const std::string path = (dir_ / "bad.smcol").string();
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fputs("not a column file", f);
  fclose(f);
  table::ColumnFileReader reader(path);
  EXPECT_EQ(reader.Open().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Batch shape checks
// ---------------------------------------------------------------------------

TEST_F(TableTest, FromSlicesRejectsRaggedSeries) {
  std::vector<double> a(24, 1.0);
  std::vector<double> b(23, 1.0);
  std::vector<table::SeriesSlice> series = {table::SeriesSlice(a),
                                            table::SeriesSlice(b)};
  auto batch = table::ColumnarBatch::FromSlices({1, 2}, std::move(series), {});
  EXPECT_FALSE(batch.ok());
}

TEST_F(TableTest, FromContiguousRejectsShapeMismatch) {
  std::vector<int64_t> ids = {1, 2};
  std::vector<double> column(47, 0.0);  // Not 2 * 24.
  auto batch =
      table::ColumnarBatch::FromContiguous(ids, column, {}, /*hours=*/24);
  EXPECT_FALSE(batch.ok());
}

// ---------------------------------------------------------------------------
// Five-engine parity: identical TaskResultSets for a fixed seed
// ---------------------------------------------------------------------------

class EngineParityTest : public ::testing::Test {
 protected:
  static constexpr int kHouseholds = 10;

  static void SetUpTestSuite() {
    dir_ = new fs::path(fs::path(::testing::TempDir()) / "table_parity");
    fs::remove_all(*dir_);
    fs::create_directories(*dir_);

    datagen::SeedGeneratorOptions options;
    options.num_households = kHouseholds;
    options.hours = kHoursPerYear;
    options.seed = 424242;
    auto dataset = datagen::GenerateSeedDataset(options);
    ASSERT_TRUE(dataset.ok());

    single_csv_ = (*dir_ / "data.csv").string();
    ASSERT_TRUE(storage::WriteReadingsCsv(*dataset, single_csv_).ok());
    auto part =
        storage::WritePartitionedCsv(*dataset, (*dir_ / "part").string());
    ASSERT_TRUE(part.ok());
    partitioned_files_ = new std::vector<std::string>(std::move(*part));
  }

  static void TearDownTestSuite() {
    std::error_code ec;
    fs::remove_all(*dir_, ec);
    delete partitioned_files_;
    delete dir_;
  }

  static engines::EngineFactoryOptions FactoryOptions() {
    engines::EngineFactoryOptions options;
    options.spool_dir = (*dir_ / "spool").string();
    options.cluster.num_nodes = 4;
    options.cluster.slots_per_node = 2;
    options.block_bytes = 64 << 10;
    return options;
  }

  static fs::path* dir_;
  static std::string single_csv_;
  static std::vector<std::string>* partitioned_files_;
};

fs::path* EngineParityTest::dir_ = nullptr;
std::string EngineParityTest::single_csv_;
std::vector<std::string>* EngineParityTest::partitioned_files_ = nullptr;

TEST_F(EngineParityTest, AllEnginesReturnIdenticalResults) {
  // Every engine consumes the same serialized dataset through its own
  // storage path; with the shared columnar data plane underneath, the
  // TaskResultSets must be IDENTICAL — not merely close.
  engines::SystemCEngine systemc(FactoryOptions().spool_dir);
  engines::MatlabEngine matlab;
  engines::MadlibEngine madlib(engines::MadlibEngine::TableLayout::kRow);
  engines::SparkEngine::Options spark_options;
  spark_options.cluster = FactoryOptions().cluster;
  spark_options.block_bytes = FactoryOptions().block_bytes;
  engines::SparkEngine spark(spark_options);
  engines::HiveEngine::Options hive_options;
  hive_options.cluster = FactoryOptions().cluster;
  hive_options.block_bytes = FactoryOptions().block_bytes;
  engines::HiveEngine hive(hive_options);

  struct Entry {
    engines::AnalyticsEngine* engine;
    table::DataSource source;
  };
  std::vector<Entry> entries;
  entries.push_back({&systemc, *table::DataSource::SingleCsv(single_csv_)});
  entries.push_back(
      {&matlab, *table::DataSource::PartitionedDir(*partitioned_files_)});
  entries.push_back({&madlib, *table::DataSource::SingleCsv(single_csv_)});
  entries.push_back({&spark, *table::DataSource::SingleCsv(single_csv_)});
  entries.push_back({&hive, *table::DataSource::SingleCsv(single_csv_)});

  for (Entry& entry : entries) {
    auto attach = entry.engine->Attach(entry.source);
    ASSERT_TRUE(attach.ok())
        << entry.engine->name() << ": " << attach.status().ToString();
  }

  for (core::TaskType task : core::kAllTasks) {
    std::vector<engines::TaskResultSet> results(entries.size());
    for (size_t e = 0; e < entries.size(); ++e) {
      auto metrics = entries[e].engine->RunTask(
          engines::TaskOptions::Default(task), &results[e]);
      ASSERT_TRUE(metrics.ok())
          << entries[e].engine->name() << "/" << core::TaskName(task) << ": "
          << metrics.status().ToString();
      engines::SortResultsByHousehold(&results[e]);
    }
    for (size_t e = 1; e < entries.size(); ++e) {
      SCOPED_TRACE(std::string(entries[e].engine->name()) + " vs " +
                   std::string(entries[0].engine->name()) + " on " +
                   std::string(core::TaskName(task)));
      switch (task) {
        case core::TaskType::kHistogram: {
          const auto& got = results[e].Get<core::HistogramResult>();
          const auto& want = results[0].Get<core::HistogramResult>();
          ASSERT_EQ(got.size(), want.size());
          for (size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].household_id, want[i].household_id);
            EXPECT_EQ(got[i].histogram.counts, want[i].histogram.counts);
          }
          break;
        }
        case core::TaskType::kThreeLine: {
          const auto& got = results[e].Get<core::ThreeLineResult>();
          const auto& want = results[0].Get<core::ThreeLineResult>();
          ASSERT_EQ(got.size(), want.size());
          for (size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].household_id, want[i].household_id);
            EXPECT_EQ(got[i].heating_gradient, want[i].heating_gradient);
            EXPECT_EQ(got[i].cooling_gradient, want[i].cooling_gradient);
            EXPECT_EQ(got[i].base_load, want[i].base_load);
          }
          break;
        }
        case core::TaskType::kPar: {
          const auto& got = results[e].Get<core::DailyProfileResult>();
          const auto& want = results[0].Get<core::DailyProfileResult>();
          ASSERT_EQ(got.size(), want.size());
          for (size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].household_id, want[i].household_id);
            EXPECT_EQ(got[i].profile, want[i].profile);
          }
          break;
        }
        case core::TaskType::kSimilarity: {
          const auto& got = results[e].Get<core::SimilarityResult>();
          const auto& want = results[0].Get<core::SimilarityResult>();
          ASSERT_EQ(got.size(), want.size());
          for (size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].household_id, want[i].household_id);
            ASSERT_EQ(got[i].matches.size(), want[i].matches.size());
            for (size_t m = 0; m < got[i].matches.size(); ++m) {
              EXPECT_EQ(got[i].matches[m].household_id,
                        want[i].matches[m].household_id);
              EXPECT_EQ(got[i].matches[m].cosine, want[i].matches[m].cosine);
            }
          }
          break;
        }
      }
    }
  }
}

}  // namespace
}  // namespace smartmeter
