#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/block_store.h"
#include "datagen/seed_generator.h"
#include "engines/engine_factory.h"
#include "engines/hive_engine.h"
#include "engines/madlib_engine.h"
#include "engines/matlab_engine.h"
#include "engines/spark_engine.h"
#include "engines/systemc_engine.h"
#include "obs/metrics.h"
#include "storage/column_store.h"
#include "storage/csv.h"
#include "storage/row_store.h"
#include "storage/scan_scope.h"
#include "table/columnar_batch.h"
#include "table/columnar_cache.h"
#include "table/data_source.h"
#include "table/delta_store.h"
#include "table/table_reader.h"
#include "timeseries/calendar.h"

namespace smartmeter {
namespace {

namespace fs = std::filesystem;

int64_t CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->Value();
}

/// Bit-exact equality between two batch views: same households, same
/// consumption doubles, same temperature column. This is the data-plane
/// guarantee — every storage backend feeds the kernels identical bytes.
void ExpectBatchesBitExact(const table::ColumnarBatch& got,
                           const table::ColumnarBatch& want,
                           const char* label) {
  ASSERT_EQ(got.count(), want.count()) << label;
  ASSERT_EQ(got.hours(), want.hours()) << label;
  for (size_t i = 0; i < got.count(); ++i) {
    ASSERT_EQ(got.household_id(i), want.household_id(i))
        << label << " household index " << i;
    const table::SeriesSlice a = got.consumption(i);
    const table::SeriesSlice b = want.consumption(i);
    ASSERT_EQ(a.size(), b.size());
    for (size_t h = 0; h < a.size(); ++h) {
      ASSERT_EQ(a[h], b[h]) << label << " household " << got.household_id(i)
                            << " hour " << h;
    }
  }
  const table::SeriesSlice ta = got.temperature();
  const table::SeriesSlice tb = want.temperature();
  ASSERT_EQ(ta.size(), tb.size()) << label;
  for (size_t h = 0; h < ta.size(); ++h) {
    ASSERT_EQ(ta[h], tb[h]) << label << " temperature hour " << h;
  }
}

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) / "table_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  static MeterDataset SmallDataset(int households, size_t hours,
                                   uint64_t seed) {
    datagen::SeedGeneratorOptions options;
    options.num_households = households;
    options.hours = hours;
    options.seed = seed;
    auto dataset = datagen::GenerateSeedDataset(options);
    EXPECT_TRUE(dataset.ok());
    return std::move(*dataset);
  }

  fs::path dir_;
};

// ---------------------------------------------------------------------------
// Storage round-trip parity (satellite: bit-exact across every backend)
// ---------------------------------------------------------------------------

TEST_F(TableTest, AllBackendsYieldBitExactSeriesViews) {
  const MeterDataset dataset = SmallDataset(6, 7 * 24, 91);
  const std::string csv_path = (dir_ / "data.csv").string();
  ASSERT_TRUE(storage::WriteReadingsCsv(dataset, csv_path).ok());
  auto source = table::DataSource::SingleCsv(csv_path);
  ASSERT_TRUE(source.ok());

  // Reference: the plain CSV parse.
  table::CsvTableReader csv_reader(*source);
  ASSERT_TRUE(csv_reader.Open().ok());
  auto csv_batch = csv_reader.NewBatch();
  ASSERT_TRUE(csv_batch.ok());
  ASSERT_FALSE(csv_batch->contiguous());

  // Columnar cache (cold build then mmap).
  table::ColumnarCache cache((dir_ / "cache").string());
  auto cached_reader = cache.OpenOrBuild(*source);
  ASSERT_TRUE(cached_reader.ok()) << cached_reader.status().ToString();
  auto cached_batch = (*cached_reader)->NewBatch();
  ASSERT_TRUE(cached_batch.ok());
  ASSERT_TRUE(cached_batch->contiguous());
  ExpectBatchesBitExact(*cached_batch, *csv_batch, "columnar-cache");

  // Row store (heap file + B+-tree) loaded from the same CSV.
  storage::RowStore row_store((dir_ / "rows.heap").string());
  ASSERT_TRUE(row_store.LoadFromCsv(csv_path).ok());
  ASSERT_TRUE(row_store.FinishLoad().ok());
  table::RowStoreReader row_reader(&row_store);
  ASSERT_TRUE(row_reader.Open().ok());
  auto row_batch = row_reader.NewBatch();
  ASSERT_TRUE(row_batch.ok());
  ExpectBatchesBitExact(*row_batch, *csv_batch, "row-store");

  // Array store serialized from the parsed dataset.
  storage::ArrayStore array_store((dir_ / "rows.array").string());
  ASSERT_TRUE(array_store.LoadFromDataset(csv_reader.dataset()).ok());
  table::ArrayStoreReader array_reader(&array_store);
  ASSERT_TRUE(array_reader.Open().ok());
  auto array_batch = array_reader.NewBatch();
  ASSERT_TRUE(array_batch.ok());
  ExpectBatchesBitExact(*array_batch, *csv_batch, "array-store");

  // Simulated-HDFS block store over the same file.
  cluster::BlockStore block_store(/*num_nodes=*/3, /*block_bytes=*/4 << 10);
  ASSERT_TRUE(block_store.AddFile(csv_path).ok());
  table::BlockStoreReader block_reader(&block_store, /*splittable=*/true);
  ASSERT_TRUE(block_reader.Open().ok());
  auto block_batch = block_reader.NewBatch();
  ASSERT_TRUE(block_batch.ok());
  ExpectBatchesBitExact(*block_batch, *csv_batch, "block-store");

  // Borrowed in-memory dataset.
  table::DatasetReader dataset_reader(&csv_reader.dataset());
  ASSERT_TRUE(dataset_reader.Open().ok());
  auto dataset_batch = dataset_reader.NewBatch();
  ASSERT_TRUE(dataset_batch.ok());
  ExpectBatchesBitExact(*dataset_batch, *csv_batch, "dataset");
}

// ---------------------------------------------------------------------------
// Columnar cache behaviour
// ---------------------------------------------------------------------------

TEST_F(TableTest, CacheMissesThenHits) {
  const MeterDataset dataset = SmallDataset(4, 48, 7);
  const std::string csv_path = (dir_ / "data.csv").string();
  ASSERT_TRUE(storage::WriteReadingsCsv(dataset, csv_path).ok());
  auto source = table::DataSource::SingleCsv(csv_path);
  ASSERT_TRUE(source.ok());

  table::ColumnarCache cache((dir_ / "cache").string());
  const int64_t misses_before = CounterValue("table.cache.misses");
  const int64_t hits_before = CounterValue("table.cache.hits");

  auto cold = cache.OpenOrBuild(*source);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(CounterValue("table.cache.misses"), misses_before + 1);
  EXPECT_EQ(CounterValue("table.cache.hits"), hits_before);

  auto warm = cache.OpenOrBuild(*source);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(CounterValue("table.cache.misses"), misses_before + 1);
  EXPECT_EQ(CounterValue("table.cache.hits"), hits_before + 1);

  auto cold_batch = (*cold)->NewBatch();
  auto warm_batch = (*warm)->NewBatch();
  ASSERT_TRUE(cold_batch.ok());
  ASSERT_TRUE(warm_batch.ok());
  ExpectBatchesBitExact(*warm_batch, *cold_batch, "warm-vs-cold");
}

TEST_F(TableTest, CacheKeyTracksSourceIdentity) {
  const MeterDataset dataset = SmallDataset(4, 48, 7);
  const std::string csv_path = (dir_ / "data.csv").string();
  ASSERT_TRUE(storage::WriteReadingsCsv(dataset, csv_path).ok());
  auto source = table::DataSource::SingleCsv(csv_path);
  ASSERT_TRUE(source.ok());

  table::ColumnarCache cache((dir_ / "cache").string());
  auto first = cache.CacheFilePath(*source);
  ASSERT_TRUE(first.ok());

  // Rewriting the source with different contents (different byte size)
  // must map to a different cache entry; the stale one is never read.
  const MeterDataset bigger = SmallDataset(5, 48, 8);
  ASSERT_TRUE(storage::WriteReadingsCsv(bigger, csv_path).ok());
  auto second = cache.CacheFilePath(*source);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(*first, *second);
}

TEST_F(TableTest, CacheKeyChangesOnSameSizeSameMtimeRewrite) {
  // Filesystem mtimes can tick in whole seconds: a source regenerated
  // within one tick keeps the same path, size, AND mtime, which the old
  // key collapsed to the stale entry. Simulate the tick deterministically
  // by rewriting same-length content and pinning the timestamp back.
  const std::string csv_path = (dir_ / "tick.csv").string();
  const auto write_file = [&csv_path](const std::string& body) {
    FILE* f = fopen(csv_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    fputs(body.c_str(), f);
    fclose(f);
  };
  const std::string before = "1,0,1.0000,10.00\n1,1,2.0000,11.00\n";
  const std::string after = "1,0,3.0000,10.00\n1,1,4.0000,11.00\n";
  ASSERT_EQ(before.size(), after.size());
  write_file(before);
  auto source = table::DataSource::SingleCsv(csv_path);
  ASSERT_TRUE(source.ok());
  table::ColumnarCache cache((dir_ / "cache").string());
  const fs::file_time_type mtime = fs::last_write_time(csv_path);
  auto first = cache.CacheFilePath(*source);
  ASSERT_TRUE(first.ok());

  write_file(after);
  fs::last_write_time(csv_path, mtime);
  auto second = cache.CacheFilePath(*source);
  ASSERT_TRUE(second.ok());
  EXPECT_NE(*first, *second);
}

TEST_F(TableTest, ColumnFileReaderRejectsCorruptFile) {
  const std::string path = (dir_ / "bad.smcol").string();
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fputs("not a column file", f);
  fclose(f);
  table::ColumnFileReader reader(path);
  EXPECT_EQ(reader.Open().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Batch shape checks
// ---------------------------------------------------------------------------

TEST_F(TableTest, FromSlicesRejectsRaggedSeries) {
  std::vector<double> a(24, 1.0);
  std::vector<double> b(23, 1.0);
  std::vector<table::SeriesSlice> series = {table::SeriesSlice(a),
                                            table::SeriesSlice(b)};
  auto batch = table::ColumnarBatch::FromSlices({1, 2}, std::move(series), {});
  EXPECT_FALSE(batch.ok());
}

TEST_F(TableTest, FromContiguousRejectsShapeMismatch) {
  std::vector<int64_t> ids = {1, 2};
  std::vector<double> column(47, 0.0);  // Not 2 * 24.
  auto batch =
      table::ColumnarBatch::FromContiguous(ids, column, {}, /*hours=*/24);
  EXPECT_FALSE(batch.ok());
}

// ---------------------------------------------------------------------------
// SMCOLV2 round-trips, scoped decode, and cache bounding
// ---------------------------------------------------------------------------

TEST_F(TableTest, V1AndV2ColumnFilesDecodeBitExact) {
  const MeterDataset dataset = SmallDataset(6, 7 * 24, 91);
  const std::string v1_path = (dir_ / "data.v1.smcol").string();
  const std::string v2_path = (dir_ / "data.v2.smcol").string();
  ASSERT_TRUE(storage::ColumnStore::WriteFile(dataset, v1_path).ok());
  ASSERT_TRUE(storage::ColumnFileWriter::WriteFile(dataset, v2_path).ok());
  ASSERT_EQ(*storage::SniffColumnFileFormat(v1_path), 1);
  ASSERT_EQ(*storage::SniffColumnFileFormat(v2_path), 2);

  table::ColumnFileReader v1(v1_path);
  table::ColumnFileReader v2(v2_path);
  ASSERT_TRUE(v1.Open().ok());
  const Status v2_open = v2.Open();
  ASSERT_TRUE(v2_open.ok()) << v2_open.ToString();
  EXPECT_EQ(v1.format_version(), 1);
  EXPECT_EQ(v2.format_version(), 2);

  auto v1_batch = v1.NewBatch();
  auto v2_batch = v2.NewBatch();
  ASSERT_TRUE(v1_batch.ok());
  ASSERT_TRUE(v2_batch.ok());
  ExpectBatchesBitExact(*v2_batch, *v1_batch, "smcolv2-vs-smcolv1");

  // V1 opens by pure mmap (nothing decoded); V2 reports its decode work.
  EXPECT_EQ(v1.open_stats().blocks_decoded, 0);
  EXPECT_GT(v2.open_stats().blocks_decoded, 0);
  EXPECT_GT(v2.open_stats().bytes_on_disk, 0);
  EXPECT_GT(v2.open_stats().bytes_decoded, v2.open_stats().bytes_on_disk / 8);
}

TEST_F(TableTest, ColumnFileEdgeShapesRoundTrip) {
  // Shapes that stress the block cutter: a single household, series whose
  // value count is not a multiple of the block size, and one household
  // per block boundary. block_values=7 keeps blocks tiny at test scale.
  struct Shape {
    int households;
    size_t hours;
  };
  const Shape shapes[] = {{1, 24}, {5, 25}, {3, 31}, {2, 48}};
  int index = 0;
  for (const Shape& shape : shapes) {
    SCOPED_TRACE(testing::Message() << shape.households << " households x "
                                    << shape.hours << " hours");
    const MeterDataset dataset =
        SmallDataset(shape.households, shape.hours, 100 + index);
    const std::string path =
        (dir_ / ("edge" + std::to_string(index++) + ".smcol")).string();
    ASSERT_TRUE(
        storage::ColumnFileWriter::WriteFile(dataset, path, /*block_values=*/7)
            .ok());
    table::ColumnFileReader reader(path);
    ASSERT_TRUE(reader.Open().ok());
    auto batch = reader.NewBatch();
    ASSERT_TRUE(batch.ok());
    auto want = table::ColumnarBatch::FromDataset(dataset);
    ASSERT_TRUE(want.ok());
    ExpectBatchesBitExact(*batch, *want, "edge-shape");
  }
}

TEST_F(TableTest, EmptyColumnFileRoundTrips) {
  // Zero households is a legal file: temperature and the (empty) footer
  // index still round-trip.
  const std::string path = (dir_ / "empty.smcol").string();
  std::vector<double> temperature(24, 15.5);
  storage::ColumnFileWriter writer(path);
  ASSERT_TRUE(writer.Open(temperature.size()).ok());
  ASSERT_TRUE(writer.Finish(temperature).ok());

  table::ColumnFileReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  EXPECT_EQ(reader.format_version(), 2);
  auto batch = reader.NewBatch();
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->count(), 0u);
  ASSERT_EQ(batch->temperature().size(), temperature.size());
  for (size_t h = 0; h < temperature.size(); ++h) {
    EXPECT_EQ(batch->temperature()[h], temperature[h]);
  }
}

TEST_F(TableTest, ScopedBatchMatchesSlicedFullBatchAndPrunes) {
  const MeterDataset dataset = SmallDataset(8, 48, 17);
  const std::string path = (dir_ / "scoped.smcol").string();
  // Small blocks so an 8-household table spans many blocks and a scoped
  // read has something to prune.
  ASSERT_TRUE(
      storage::ColumnFileWriter::WriteFile(dataset, path, /*block_values=*/16)
          .ok());
  table::ColumnFileReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  auto full = reader.NewBatch();
  ASSERT_TRUE(full.ok());

  storage::ScanScope scope;
  scope.row_begin = 3;
  scope.row_count = 2;
  auto scoped = reader.NewScopedBatch(scope);
  ASSERT_TRUE(scoped.ok()) << scoped.status().ToString();
  auto want = full->Slice(scope.row_begin, scope.row_count);
  ASSERT_TRUE(want.ok());
  ExpectBatchesBitExact(scoped->batch, *want, "scoped-vs-sliced");

  // The block index must have done real work: some blocks pruned, fewer
  // decoded than exist, and the counts partition the total.
  EXPECT_GT(scoped->stats.blocks_pruned, 0);
  EXPECT_GT(scoped->stats.blocks_decoded, 0);
  EXPECT_LT(scoped->stats.blocks_decoded, scoped->stats.blocks_total);
  EXPECT_EQ(scoped->stats.blocks_decoded + scoped->stats.blocks_pruned,
            scoped->stats.blocks_total);
}

TEST_F(TableTest, ScopedHourWindowDecodesWindowOnly) {
  const MeterDataset dataset = SmallDataset(4, 48, 29);
  const std::string path = (dir_ / "hour_window.smcol").string();
  ASSERT_TRUE(
      storage::ColumnFileWriter::WriteFile(dataset, path, /*block_values=*/16)
          .ok());
  table::ColumnFileReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  auto full = reader.NewBatch();
  ASSERT_TRUE(full.ok());

  storage::ScanScope scope;
  scope.hour_begin = 12;
  scope.hour_count = 8;
  auto scoped = reader.NewScopedBatch(scope);
  ASSERT_TRUE(scoped.ok()) << scoped.status().ToString();
  ASSERT_EQ(scoped->batch.count(), full->count());
  ASSERT_EQ(scoped->batch.hours(), scope.hour_count);
  for (size_t i = 0; i < full->count(); ++i) {
    const table::SeriesSlice got = scoped->batch.consumption(i);
    const table::SeriesSlice all = full->consumption(i);
    for (size_t h = 0; h < scope.hour_count; ++h) {
      ASSERT_EQ(got[h], all[scope.hour_begin + h])
          << "household " << i << " window hour " << h;
    }
  }
  ASSERT_EQ(scoped->batch.temperature().size(), scope.hour_count);
  for (size_t h = 0; h < scope.hour_count; ++h) {
    EXPECT_EQ(scoped->batch.temperature()[h],
              full->temperature()[scope.hour_begin + h]);
  }
}

TEST_F(TableTest, CacheEvictsLruUnderByteBudget) {
  const MeterDataset first = SmallDataset(4, 48, 7);
  const MeterDataset second = SmallDataset(5, 48, 8);
  const std::string first_csv = (dir_ / "first.csv").string();
  const std::string second_csv = (dir_ / "second.csv").string();
  ASSERT_TRUE(storage::WriteReadingsCsv(first, first_csv).ok());
  ASSERT_TRUE(storage::WriteReadingsCsv(second, second_csv).ok());
  auto first_source = table::DataSource::SingleCsv(first_csv);
  auto second_source = table::DataSource::SingleCsv(second_csv);
  ASSERT_TRUE(first_source.ok());
  ASSERT_TRUE(second_source.ok());

  // A 1-byte budget holds at most the just-installed entry, so the second
  // miss must evict the first entry's file.
  table::ColumnarCache::Options options;
  options.byte_budget = 1;
  table::ColumnarCache cache((dir_ / "cache").string(), options);
  const int64_t evictions_before = CounterValue("table.cache.evictions");

  auto one = cache.OpenOrBuild(*first_source);
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  auto first_path = cache.CacheFilePath(*first_source);
  ASSERT_TRUE(first_path.ok());
  ASSERT_TRUE(fs::exists(*first_path));

  auto two = cache.OpenOrBuild(*second_source);
  ASSERT_TRUE(two.ok()) << two.status().ToString();
  EXPECT_EQ(CounterValue("table.cache.evictions"), evictions_before + 1);
  EXPECT_FALSE(fs::exists(*first_path));
  auto second_path = cache.CacheFilePath(*second_source);
  ASSERT_TRUE(second_path.ok());
  EXPECT_TRUE(fs::exists(*second_path));
}

TEST_F(TableTest, CacheSpoolsRequestedFormatWithBitExactBatches) {
  const MeterDataset dataset = SmallDataset(5, 72, 13);
  const std::string csv_path = (dir_ / "data.csv").string();
  ASSERT_TRUE(storage::WriteReadingsCsv(dataset, csv_path).ok());
  auto source = table::DataSource::SingleCsv(csv_path);
  ASSERT_TRUE(source.ok());

  table::CsvTableReader csv_reader(*source);
  ASSERT_TRUE(csv_reader.Open().ok());
  auto reference = csv_reader.NewBatch();
  ASSERT_TRUE(reference.ok());

  const table::ColumnarCache::Format formats[] = {
      table::ColumnarCache::Format::kV1, table::ColumnarCache::Format::kV2};
  for (table::ColumnarCache::Format format : formats) {
    const int expect_version =
        format == table::ColumnarCache::Format::kV1 ? 1 : 2;
    SCOPED_TRACE(testing::Message() << "format v" << expect_version);
    table::ColumnarCache::Options options;
    options.format = format;
    table::ColumnarCache cache(
        (dir_ / ("cache_v" + std::to_string(expect_version))).string(),
        options);
    auto reader = cache.OpenOrBuild(*source);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    auto cache_path = cache.CacheFilePath(*source);
    ASSERT_TRUE(cache_path.ok());
    auto sniffed = storage::SniffColumnFileFormat(*cache_path);
    ASSERT_TRUE(sniffed.ok());
    EXPECT_EQ(*sniffed, expect_version);
    auto batch = (*reader)->NewBatch();
    ASSERT_TRUE(batch.ok());
    ExpectBatchesBitExact(*batch, *reference, "cache-spool-format");
  }
}

// ---------------------------------------------------------------------------
// Delta layer: merge shapes, write rules, snapshot stability
// ---------------------------------------------------------------------------

TEST_F(TableTest, DeltaOnlyHouseholdsWithoutBase) {
  // Empty base: the store never sees AttachBase, every row is opened by
  // its first live reading. Published slots no writer filled read 0.0.
  table::DeltaStore store;
  ASSERT_TRUE(store.Append(42, 0, 1.5, 10.0).ok());
  ASSERT_TRUE(store.Append(42, 2, 2.5, 12.0).ok());  // hour 1 is a gap
  ASSERT_TRUE(store.Append(7, 1, 9.0, 99.0).ok());   // second delta-only row

  table::DeltaTableReader reader(&store);
  auto pre_open = reader.NewBatch();
  ASSERT_FALSE(pre_open.ok());
  EXPECT_EQ(pre_open.status().code(), StatusCode::kInternal);
  ASSERT_TRUE(reader.Open().ok());
  auto batch = reader.NewBatch();
  ASSERT_TRUE(batch.ok());

  ASSERT_EQ(batch->count(), 2u);
  ASSERT_EQ(batch->hours(), 3u);
  EXPECT_EQ(batch->household_id(0), 42);  // first-append order
  EXPECT_EQ(batch->household_id(1), 7);
  const table::SeriesSlice first = batch->consumption(0);
  EXPECT_EQ(first[0], 1.5);
  EXPECT_EQ(first[1], 0.0);  // gap rule: unwritten published slot
  EXPECT_EQ(first[2], 2.5);
  const table::SeriesSlice second = batch->consumption(1);
  EXPECT_EQ(second[0], 0.0);
  EXPECT_EQ(second[1], 9.0);
  EXPECT_EQ(second[2], 0.0);
  // First writer of each hour fixes the shared temperature column.
  const table::SeriesSlice temps = batch->temperature();
  EXPECT_EQ(temps[0], 10.0);
  EXPECT_EQ(temps[1], 99.0);
  EXPECT_EQ(temps[2], 12.0);
}

TEST_F(TableTest, DeltaAppendsMergeContiguouslyWithBase) {
  // Base + delta must read as one uninterrupted series per household,
  // bit-exact against a monolithic batch over the same values. The base
  // is the first 48 hours of a 50-hour dataset; the last two hours
  // arrive as live appends.
  const MeterDataset grown = SmallDataset(4, 50, 17);
  std::vector<int64_t> base_ids;
  std::vector<table::SeriesSlice> base_series;
  for (size_t i = 0; i < grown.num_consumers(); ++i) {
    base_ids.push_back(grown.consumer(i).household_id);
    base_series.emplace_back(grown.consumer(i).consumption.data(), 48);
  }
  auto base = table::ColumnarBatch::FromSlices(
      base_ids, base_series,
      table::SeriesSlice(grown.temperature().data(), 48));
  ASSERT_TRUE(base.ok());

  table::DeltaStore store;
  ASSERT_TRUE(store.AttachBase(*base).ok());
  EXPECT_EQ(store.base_hours(), 48u);
  EXPECT_EQ(store.rows(), 4u);

  // Re-attaching once rows exist must be rejected cleanly.
  auto again = store.AttachBase(*base);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kInvalidArgument);

  // Two live hours for every base household, plus one delta-only row.
  for (size_t i = 0; i < grown.num_consumers(); ++i) {
    const auto& consumer = grown.consumer(i);
    for (int64_t h = 48; h < 50; ++h) {
      ASSERT_TRUE(store
                      .Append(consumer.household_id, h,
                              consumer.consumption[static_cast<size_t>(h)],
                              grown.temperature()[static_cast<size_t>(h)])
                      .ok());
    }
  }
  ASSERT_TRUE(store.Append(9999, 49, 3.25, 0.0).ok());

  table::DeltaTableReader reader(&store);
  ASSERT_TRUE(reader.Open().ok());
  auto merged = reader.NewBatch();
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->count(), 5u);
  ASSERT_EQ(merged->hours(), 50u);

  // The base rows must equal the monolithic 50-hour dataset; the
  // delta-only household appends after them.
  for (size_t i = 0; i < 4; ++i) {
    const auto& consumer = grown.consumer(i);
    ASSERT_EQ(merged->household_id(i), consumer.household_id);
    const table::SeriesSlice series = merged->consumption(i);
    for (size_t h = 0; h < 50; ++h) {
      ASSERT_EQ(series[h], consumer.consumption[h])
          << "household " << consumer.household_id << " hour " << h;
    }
  }
  EXPECT_EQ(merged->household_id(4), 9999);
  EXPECT_EQ(merged->consumption(4)[49], 3.25);
  EXPECT_EQ(merged->consumption(4)[48], 0.0);
  // Base hours keep the base temperature feed; the delta hours take the
  // first live writer's value.
  const table::SeriesSlice temps = merged->temperature();
  for (size_t h = 0; h < 50; ++h) {
    ASSERT_EQ(temps[h], grown.temperature()[h]) << "temperature hour " << h;
  }
}

TEST_F(TableTest, DeltaScopedScanIntersectingOnlyDeltaHours) {
  // An hour window strictly past base_hours touches only live slots; a
  // scoped batch over it is a zero-copy sub-rectangle with zero
  // ScanStats (nothing decoded, nothing preread).
  const MeterDataset dataset = SmallDataset(5, 24, 23);
  auto base = table::ColumnarBatch::FromDataset(dataset);
  ASSERT_TRUE(base.ok());
  table::DeltaStore store;
  ASSERT_TRUE(store.AttachBase(*base).ok());
  for (int64_t h = 24; h < 30; ++h) {
    for (size_t i = 0; i < dataset.num_consumers(); ++i) {
      ASSERT_TRUE(store
                      .Append(dataset.consumer(i).household_id, h,
                              100.0 * static_cast<double>(i) +
                                  static_cast<double>(h),
                              -5.0)
                      .ok());
    }
  }

  table::DeltaTableReader reader(&store);
  ASSERT_TRUE(reader.Open().ok());

  storage::ScanScope scope;
  scope.row_begin = 1;
  scope.row_count = 2;
  scope.hour_begin = 25;  // > base_hours: the window never touches base
  scope.hour_count = 4;
  auto scoped = reader.NewScopedBatch(scope);
  ASSERT_TRUE(scoped.ok()) << scoped.status().ToString();
  ASSERT_EQ(scoped->batch.count(), 2u);
  ASSERT_EQ(scoped->batch.hours(), 4u);
  for (size_t r = 0; r < 2; ++r) {
    const size_t row = 1 + r;
    EXPECT_EQ(scoped->batch.household_id(r),
              dataset.consumer(row).household_id);
    const table::SeriesSlice series = scoped->batch.consumption(r);
    for (size_t h = 0; h < 4; ++h) {
      ASSERT_EQ(series[h], 100.0 * static_cast<double>(row) +
                               static_cast<double>(25 + h));
    }
  }
  EXPECT_EQ(scoped->stats.blocks_decoded, 0);
  EXPECT_EQ(scoped->stats.bytes_decoded, 0);
  EXPECT_NE(scoped->owner, nullptr);

  // The scoped view must survive the reader moving on: refresh after
  // more appends, the old rectangle still reads the old bits.
  ASSERT_TRUE(store.Append(dataset.consumer(1).household_id, 30, 7.0, 0.0)
                  .ok());
  ASSERT_TRUE(reader.Refresh().ok());
  EXPECT_EQ(scoped->batch.consumption(0)[0], 100.0 + 25.0);
}

TEST_F(TableTest, DeltaWriteRulesRejectCleanly) {
  table::DeltaStore::Options options;
  options.publish_lag_hours = 0;
  table::DeltaStore store(options);
  ASSERT_TRUE(store.Append(1, 3, 1.0, 0.0).ok());

  auto negative = store.Append(1, -1, 1.0, 0.0);
  EXPECT_EQ(negative.code(), StatusCode::kInvalidArgument);

  auto duplicate = store.Append(1, 3, 2.0, 0.0);
  EXPECT_EQ(duplicate.code(), StatusCode::kAlreadyExists);

  // Before publication the earlier hours are still open slots.
  ASSERT_TRUE(store.Append(1, 2, 0.5, 0.0).ok());

  // Snapshot publishes through hour 3; everything below is now sealed.
  auto snapshot = store.Snapshot();
  ASSERT_EQ(snapshot->hours, 4u);
  auto late = store.Append(1, 1, 1.0, 0.0);
  EXPECT_EQ(late.code(), StatusCode::kOutOfRange) << late.ToString();
  // The sealed-but-unwritten slot stays at the gap value forever.
  EXPECT_EQ(snapshot->Series(0)[1], 0.0);
}

TEST_F(TableTest, DeltaPublishLagHoldsBackRecentHours) {
  table::DeltaStore::Options options;
  options.publish_lag_hours = 2;
  table::DeltaStore store(options);
  for (int64_t h = 0; h < 10; ++h) {
    ASSERT_TRUE(store.Append(5, h, static_cast<double>(h), 0.0).ok());
  }

  std::vector<double> freshness;
  auto snapshot = store.Snapshot(&freshness);
  // max hour 9, lag 2 -> hours [0, 8) published.
  EXPECT_EQ(snapshot->hours, 8u);
  // Freshness samples drain only for published hours.
  EXPECT_EQ(freshness.size(), 8u);

  // Readings inside the lag window may still arrive out of order...
  auto a = store.Append(6, 8, 1.0, 0.0);
  EXPECT_TRUE(a.ok()) << a.ToString();
  // ...but not below the published extent.
  auto late = store.Append(6, 7, 1.0, 0.0);
  EXPECT_EQ(late.code(), StatusCode::kOutOfRange) << late.ToString();

  // The remaining two hours publish once newer readings push the
  // watermark past them.
  ASSERT_TRUE(store.Append(5, 11, 11.0, 0.0).ok());
  freshness.clear();
  snapshot = store.Snapshot(&freshness);
  EXPECT_EQ(snapshot->hours, 10u);
  EXPECT_EQ(freshness.size(), 3u);  // hours 8, 9 (household 5) + 8 (6)
  EXPECT_EQ(snapshot->Series(0)[9], 9.0);
}

TEST_F(TableTest, DeltaSnapshotStableAcrossCopyOnGrow) {
  // Growth replaces the backing buffers (copy, never resize in place):
  // a snapshot taken before the growth must keep reading the old bits.
  table::DeltaStore::Options options;
  options.hour_capacity_headroom = 4;
  table::DeltaStore store(options);
  for (int64_t h = 0; h < 4; ++h) {
    ASSERT_TRUE(store.Append(1, h, 1.0 + static_cast<double>(h), 20.0).ok());
  }
  auto before = store.Snapshot();
  ASSERT_EQ(before->hours, 4u);
  const double* old_data = before->consumption->data();

  // Push far past the capacity and add rows: both trigger re-grids.
  for (int64_t h = 4; h < 700; ++h) {
    ASSERT_TRUE(store.Append(1, h, -1.0, 0.0).ok());
  }
  for (int64_t id = 100; id < 140; ++id) {
    ASSERT_TRUE(store.Append(id, 699, 2.0, 0.0).ok());
  }

  // The old snapshot still views its original (now-retired) buffer.
  EXPECT_EQ(before->consumption->data(), old_data);
  EXPECT_EQ(before->rows, 1u);
  for (size_t h = 0; h < 4; ++h) {
    ASSERT_EQ(before->Series(0)[h], 1.0 + static_cast<double>(h));
  }

  auto after = store.Snapshot();
  EXPECT_EQ(after->rows, 41u);
  EXPECT_EQ(after->hours, 700u);
  for (size_t h = 0; h < 4; ++h) {
    ASSERT_EQ(after->Series(0)[h], 1.0 + static_cast<double>(h));
  }
  EXPECT_EQ(after->Series(0)[699], -1.0);
  EXPECT_EQ(after->Series(40)[699], 2.0);
}

TEST_F(TableTest, DeltaSnapshotToDatasetRoundTrips) {
  const MeterDataset dataset = SmallDataset(3, 24, 29);
  auto base = table::ColumnarBatch::FromDataset(dataset);
  ASSERT_TRUE(base.ok());
  table::DeltaStore store;
  ASSERT_TRUE(store.AttachBase(*base).ok());
  for (size_t i = 0; i < dataset.num_consumers(); ++i) {
    ASSERT_TRUE(store
                    .Append(dataset.consumer(i).household_id, 24,
                            static_cast<double>(i), 8.0)
                    .ok());
  }

  auto rebuilt = table::SnapshotToDataset(*store.Snapshot());
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  ASSERT_EQ(rebuilt->num_consumers(), 3u);
  ASSERT_EQ(rebuilt->hours(), 25u);

  // Resealing the merged view into a batch must equal the live reader's
  // batch bit for bit — the "rebuild the monolithic file" parity pin.
  auto resealed = table::ColumnarBatch::FromDataset(*rebuilt);
  ASSERT_TRUE(resealed.ok());
  table::DeltaTableReader reader(&store);
  ASSERT_TRUE(reader.Open().ok());
  auto live = reader.NewBatch();
  ASSERT_TRUE(live.ok());
  ExpectBatchesBitExact(*resealed, *live, "snapshot-to-dataset");
}

TEST_F(TableTest, DeltaConcurrentAppendsAndSnapshotsAreSafe) {
  // A hour-major writer races the snapshotter; every snapshot must be
  // internally consistent (published slots never change underneath
  // it). Run under TSan in CI. The publish lag of 1 mirrors the real
  // ingest wiring: the extent is global, so without a lag a snapshot
  // taken between two same-hour appends would seal the hour early and
  // reject the second household's reading.
  table::DeltaStore::Options options;
  options.publish_lag_hours = 1;
  table::DeltaStore store(options);
  constexpr int64_t kHours = 400;
  constexpr int64_t kHouseholds = 2;

  std::atomic<bool> done{false};
  std::thread writer([&store]() {
    for (int64_t h = 0; h < kHours; ++h) {
      for (int64_t household = 1; household <= kHouseholds; ++household) {
        ASSERT_TRUE(
            store.Append(household, h, static_cast<double>(h), 1.0).ok());
      }
    }
    // One sentinel reading advances the watermark past the lag so every
    // real hour publishes.
    ASSERT_TRUE(store.Append(1, kHours, 0.0, 1.0).ok());
  });
  std::thread snapshotter([&store, &done]() {
    while (!done.load(std::memory_order_acquire)) {
      auto snapshot = store.Snapshot();
      for (size_t r = 0; r < snapshot->rows; ++r) {
        const std::span<const double> series = snapshot->Series(r);
        for (size_t h = 0; h < series.size(); ++h) {
          // Published slots hold either the written value or the gap 0.0.
          ASSERT_TRUE(series[h] == static_cast<double>(h) || series[h] == 0.0)
              << "row " << r << " hour " << h << " = " << series[h];
        }
      }
    }
  });
  writer.join();
  done.store(true, std::memory_order_release);
  snapshotter.join();

  auto final_snapshot = store.Snapshot();
  ASSERT_EQ(final_snapshot->rows, 2u);
  ASSERT_EQ(final_snapshot->hours, static_cast<size_t>(kHours));
  for (size_t r = 0; r < 2; ++r) {
    for (size_t h = 0; h < static_cast<size_t>(kHours); ++h) {
      ASSERT_EQ(final_snapshot->Series(r)[h], static_cast<double>(h));
    }
  }
  EXPECT_EQ(store.version(),
            static_cast<uint64_t>(kHouseholds) * kHours + 1);
}

// ---------------------------------------------------------------------------
// Five-engine parity: identical TaskResultSets for a fixed seed
// ---------------------------------------------------------------------------

class EngineParityTest : public ::testing::Test {
 protected:
  static constexpr int kHouseholds = 10;

  static void SetUpTestSuite() {
    dir_ = new fs::path(fs::path(::testing::TempDir()) / "table_parity");
    fs::remove_all(*dir_);
    fs::create_directories(*dir_);

    datagen::SeedGeneratorOptions options;
    options.num_households = kHouseholds;
    options.hours = kHoursPerYear;
    options.seed = 424242;
    auto dataset = datagen::GenerateSeedDataset(options);
    ASSERT_TRUE(dataset.ok());

    single_csv_ = (*dir_ / "data.csv").string();
    ASSERT_TRUE(storage::WriteReadingsCsv(*dataset, single_csv_).ok());
    auto part =
        storage::WritePartitionedCsv(*dataset, (*dir_ / "part").string());
    ASSERT_TRUE(part.ok());
    partitioned_files_ = new std::vector<std::string>(std::move(*part));
  }

  static void TearDownTestSuite() {
    std::error_code ec;
    fs::remove_all(*dir_, ec);
    delete partitioned_files_;
    delete dir_;
  }

  static engines::EngineFactoryOptions FactoryOptions() {
    engines::EngineFactoryOptions options;
    options.spool_dir = (*dir_ / "spool").string();
    options.cluster.num_nodes = 4;
    options.cluster.slots_per_node = 2;
    options.block_bytes = 64 << 10;
    return options;
  }

  static fs::path* dir_;
  static std::string single_csv_;
  static std::vector<std::string>* partitioned_files_;
};

fs::path* EngineParityTest::dir_ = nullptr;
std::string EngineParityTest::single_csv_;
std::vector<std::string>* EngineParityTest::partitioned_files_ = nullptr;

TEST_F(EngineParityTest, AllEnginesReturnIdenticalResults) {
  // Every engine consumes the same serialized dataset through its own
  // storage path; with the shared columnar data plane underneath, the
  // TaskResultSets must be IDENTICAL — not merely close.
  engines::SystemCEngine systemc(FactoryOptions().spool_dir);
  engines::MatlabEngine matlab;
  engines::MadlibEngine madlib(engines::MadlibEngine::TableLayout::kRow);
  engines::SparkEngine::Options spark_options;
  spark_options.cluster = FactoryOptions().cluster;
  spark_options.block_bytes = FactoryOptions().block_bytes;
  engines::SparkEngine spark(spark_options);
  engines::HiveEngine::Options hive_options;
  hive_options.cluster = FactoryOptions().cluster;
  hive_options.block_bytes = FactoryOptions().block_bytes;
  engines::HiveEngine hive(hive_options);

  struct Entry {
    engines::AnalyticsEngine* engine;
    table::DataSource source;
  };
  std::vector<Entry> entries;
  entries.push_back({&systemc, *table::DataSource::SingleCsv(single_csv_)});
  entries.push_back(
      {&matlab, *table::DataSource::PartitionedDir(*partitioned_files_)});
  entries.push_back({&madlib, *table::DataSource::SingleCsv(single_csv_)});
  entries.push_back({&spark, *table::DataSource::SingleCsv(single_csv_)});
  entries.push_back({&hive, *table::DataSource::SingleCsv(single_csv_)});

  for (Entry& entry : entries) {
    auto attach = entry.engine->Attach(entry.source);
    ASSERT_TRUE(attach.ok())
        << entry.engine->name() << ": " << attach.status().ToString();
  }

  for (core::TaskType task : core::kAllTasks) {
    std::vector<engines::TaskResultSet> results(entries.size());
    for (size_t e = 0; e < entries.size(); ++e) {
      auto metrics = entries[e].engine->RunTask(
          engines::TaskOptions::Default(task), &results[e]);
      ASSERT_TRUE(metrics.ok())
          << entries[e].engine->name() << "/" << core::TaskName(task) << ": "
          << metrics.status().ToString();
      engines::SortResultsByHousehold(&results[e]);
    }
    for (size_t e = 1; e < entries.size(); ++e) {
      SCOPED_TRACE(std::string(entries[e].engine->name()) + " vs " +
                   std::string(entries[0].engine->name()) + " on " +
                   std::string(core::TaskName(task)));
      switch (task) {
        case core::TaskType::kHistogram: {
          const auto& got = results[e].Get<core::HistogramResult>();
          const auto& want = results[0].Get<core::HistogramResult>();
          ASSERT_EQ(got.size(), want.size());
          for (size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].household_id, want[i].household_id);
            EXPECT_EQ(got[i].histogram.counts, want[i].histogram.counts);
          }
          break;
        }
        case core::TaskType::kThreeLine: {
          const auto& got = results[e].Get<core::ThreeLineResult>();
          const auto& want = results[0].Get<core::ThreeLineResult>();
          ASSERT_EQ(got.size(), want.size());
          for (size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].household_id, want[i].household_id);
            EXPECT_EQ(got[i].heating_gradient, want[i].heating_gradient);
            EXPECT_EQ(got[i].cooling_gradient, want[i].cooling_gradient);
            EXPECT_EQ(got[i].base_load, want[i].base_load);
          }
          break;
        }
        case core::TaskType::kPar: {
          const auto& got = results[e].Get<core::DailyProfileResult>();
          const auto& want = results[0].Get<core::DailyProfileResult>();
          ASSERT_EQ(got.size(), want.size());
          for (size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].household_id, want[i].household_id);
            EXPECT_EQ(got[i].profile, want[i].profile);
          }
          break;
        }
        case core::TaskType::kSimilarity: {
          const auto& got = results[e].Get<core::SimilarityResult>();
          const auto& want = results[0].Get<core::SimilarityResult>();
          ASSERT_EQ(got.size(), want.size());
          for (size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].household_id, want[i].household_id);
            ASSERT_EQ(got[i].matches.size(), want[i].matches.size());
            for (size_t m = 0; m < got[i].matches.size(); ++m) {
              EXPECT_EQ(got[i].matches[m].household_id,
                        want[i].matches[m].household_id);
              EXPECT_EQ(got[i].matches[m].cosine, want[i].matches[m].cosine);
            }
          }
          break;
        }
      }
    }
  }
}

}  // namespace
}  // namespace smartmeter
