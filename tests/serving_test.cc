// ServingRunner behaviour: the validated request builder, admission,
// shedding with reason messages (queue-full, quota, eviction, deadline,
// cancel), priority + deficit-round-robin fairness across tenants,
// shard routing, scatter-gather parity with an unsharded run, and
// drain/shutdown safety.
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/seed_generator.h"
#include "engines/systemc_engine.h"
#include "exec/serving_runner.h"
#include "storage/csv.h"
#include "streaming/detectors.h"
#include "streaming/stream_processor.h"
#include "timeseries/calendar.h"

namespace smartmeter::exec {
namespace {

namespace fs = std::filesystem;

class ServingTest : public ::testing::Test {
 protected:
  static constexpr int kHouseholds = 8;

  static void SetUpTestSuite() {
    dir_ = new fs::path(fs::path(::testing::TempDir()) / "serving_test");
    fs::create_directories(*dir_);
    datagen::SeedGeneratorOptions options;
    options.num_households = kHouseholds;
    options.hours = kHoursPerYear;
    options.seed = 99;
    MeterDataset dataset = *datagen::GenerateSeedDataset(options);
    single_csv_ = (*dir_ / "data.csv").string();
    ASSERT_TRUE(storage::WriteReadingsCsv(dataset, single_csv_).ok());
  }
  static void TearDownTestSuite() {
    std::error_code ec;
    fs::remove_all(*dir_, ec);
    delete dir_;
  }

  /// A fresh attached SystemC session spooling under `tag`.
  static std::unique_ptr<engines::SystemCEngine> MakeSession(
      const std::string& tag) {
    auto engine = std::make_unique<engines::SystemCEngine>(
        (*dir_ / ("spool_" + tag)).string());
    EXPECT_TRUE(
        engine->Attach(*table::DataSource::SingleCsv(single_csv_)).ok());
    return engine;
  }

  static QueryRequest Histogram(const std::string& label,
                                const std::string& tenant = "test") {
    return *QueryRequest::Builder()
                .Task(engines::TaskOptions::Default(core::TaskType::kHistogram))
                .Tenant(tenant)
                .Label(label)
                .Build();
  }

  static table::DataSource Source() {
    return *table::DataSource::SingleCsv(single_csv_);
  }

  static std::string RoutingDir() { return (*dir_ / "routing").string(); }

  /// Exact equality: sharded scatter-gather must reproduce the unsharded
  /// run to the last bit, not to a tolerance.
  static void ExpectHistogramsBitIdentical(
      const engines::TaskResultSet& got, const engines::TaskResultSet& want) {
    const auto& g = got.Get<core::HistogramResult>();
    const auto& w = want.Get<core::HistogramResult>();
    ASSERT_EQ(g.size(), w.size());
    for (size_t i = 0; i < g.size(); ++i) {
      EXPECT_EQ(g[i].household_id, w[i].household_id);
      EXPECT_EQ(g[i].histogram.counts, w[i].histogram.counts);
    }
  }

  static fs::path* dir_;
  static std::string single_csv_;
};

fs::path* ServingTest::dir_ = nullptr;
std::string ServingTest::single_csv_;

// ---------------------------------------------------------------------------
// Request builder validation (serving API v3)
// ---------------------------------------------------------------------------

TEST_F(ServingTest, BuilderRejectsEmptyTenant) {
  auto request = QueryRequest::Builder().Label("no-tenant").Build();
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(request.status().ToString().find("tenant"), std::string::npos);
}

TEST_F(ServingTest, BuilderRejectsNegativeDeadline) {
  auto request = QueryRequest::Builder()
                     .Tenant("t")
                     .Deadline(std::chrono::nanoseconds(-1))
                     .Build();
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(request.status().ToString().find("deadline"), std::string::npos);
}

TEST_F(ServingTest, BuilderRejectsNegativeHousehold) {
  auto request = QueryRequest::Builder().Tenant("t").Household(-7).Build();
  ASSERT_FALSE(request.ok());
  EXPECT_EQ(request.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ServingTest, BuilderAcceptsFullRequest) {
  auto request = QueryRequest::Builder()
                     .Task(engines::TaskOptions::Default(
                         core::TaskType::kSimilarity))
                     .Tenant("analytics-ui")
                     .Priority(QueryPriority::kHigh)
                     .Deadline(std::chrono::milliseconds(50))
                     .Label("q17")
                     .Household(3)
                     .Build();
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request->tenant(), "analytics-ui");
  EXPECT_EQ(request->priority(), QueryPriority::kHigh);
  EXPECT_EQ(request->household(), 3);
  EXPECT_EQ(request->options().task(), core::TaskType::kSimilarity);
}

// ---------------------------------------------------------------------------
// Admission and dispatch
// ---------------------------------------------------------------------------

TEST_F(ServingTest, AttachSessionValidatesThenServes) {
  engines::SystemCEngine engine((*dir_ / "spool_attach").string());
  ServingOptions options;
  options.keep_results = true;
  ServingRunner runner(options);

  // A malformed source (missing file) must be rejected before the
  // session enters the pool.
  table::DataSource missing;
  missing.layout = table::DataSource::Layout::kSingleCsv;
  missing.files = {(*dir_ / "nope.csv").string()};
  EXPECT_FALSE(runner.AttachSession(&engine, missing).ok());
  EXPECT_EQ(runner.num_sessions(), 0u);

  auto attach = runner.AttachSession(&engine, Source());
  ASSERT_TRUE(attach.ok()) << attach.status().ToString();
  EXPECT_GE(*attach, 0.0);
  EXPECT_EQ(runner.num_sessions(), 1u);

  auto ticket = runner.Submit(Histogram("attach-q"));
  ASSERT_TRUE(ticket.ok());
  const QueryOutcome& outcome = (*ticket)->Wait();
  EXPECT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.tenant, "test");
  runner.Shutdown();
}

TEST_F(ServingTest, ServesQueriesAcrossSessions) {
  auto e1 = MakeSession("s1");
  auto e2 = MakeSession("s2");
  ServingOptions options;
  options.keep_results = true;
  ServingRunner runner(options);
  runner.AddSession(e1.get());
  runner.AddSession(e2.get());
  EXPECT_EQ(runner.num_sessions(), 2u);

  std::vector<std::shared_ptr<QueryTicket>> tickets;
  for (int i = 0; i < 8; ++i) {
    auto ticket = runner.Submit(Histogram("q" + std::to_string(i)));
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(*ticket);
  }
  for (auto& ticket : tickets) {
    const QueryOutcome& outcome = ticket->Wait();
    EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    EXPECT_FALSE(outcome.shed);
    EXPECT_GT(outcome.query_id, 0u);
    EXPECT_TRUE(outcome.results.Holds<core::HistogramResult>());
    EXPECT_EQ(outcome.results.size(), 8u);  // One result per household.
  }
  const ServingStats stats = runner.stats();
  EXPECT_EQ(stats.submitted, 8);
  EXPECT_EQ(stats.admitted, 8);
  EXPECT_EQ(stats.completed_ok, 8);
  EXPECT_EQ(stats.shed_queue_full, 0);
  const auto tenant = stats.tenants.find("test");
  ASSERT_NE(tenant, stats.tenants.end());
  EXPECT_EQ(tenant->second.submitted, 8);
  EXPECT_EQ(tenant->second.completed_ok, 8);
  EXPECT_EQ(tenant->second.shed, 0);
}

// ---------------------------------------------------------------------------
// Shedding, with the reason spelled out in the status message
// ---------------------------------------------------------------------------

TEST_F(ServingTest, QueueFullShedsWithResourceExhausted) {
  auto engine = MakeSession("full");
  ServingOptions options;
  options.queue_capacity = 1;
  ServingRunner runner(options);
  // No AddSession yet: nothing drains the queue, so capacity is exact.
  auto first = runner.Submit(Histogram("fits"));
  ASSERT_TRUE(first.ok());
  auto second = runner.Submit(Histogram("shed"));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(second.status().ToString().find("admission queue full"),
            std::string::npos);
  EXPECT_EQ(runner.stats().shed_queue_full, 1);

  // Once a session drains the queue, admission recovers.
  runner.AddSession(engine.get());
  (*first)->Wait();
  auto third = runner.Submit(Histogram("admitted"));
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE((*third)->Wait().status.ok());
}

TEST_F(ServingTest, TenantQuotaShedsWithQuotaReason) {
  ServingOptions options;
  options.queue_capacity = 8;
  options.tenant_queue_quota = 1;
  ServingRunner runner(options);
  // No sessions: queued entries stay queued, so the quota is exact.
  auto first = runner.Submit(Histogram("fits", "greedy"));
  ASSERT_TRUE(first.ok());
  auto second = runner.Submit(Histogram("over", "greedy"));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(second.status().ToString().find("over queue quota"),
            std::string::npos);
  // Another tenant is unaffected by greedy's quota.
  auto other = runner.Submit(Histogram("fine", "polite"));
  EXPECT_TRUE(other.ok());
  const ServingStats stats = runner.stats();
  EXPECT_EQ(stats.shed_quota, 1);
  EXPECT_EQ(stats.tenants.at("greedy").shed, 1);
  EXPECT_EQ(stats.tenants.at("polite").shed, 0);
  runner.Shutdown();
}

TEST_F(ServingTest, FullQueueEvictsOverShareTenant) {
  ServingOptions options;
  options.queue_capacity = 2;
  ServingRunner runner(options);
  // Hostile fills the whole queue before polite shows up.
  auto h1 = runner.Submit(Histogram("h1", "hostile"));
  auto h2 = runner.Submit(Histogram("h2", "hostile"));
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  // Polite's submission evicts hostile's newest ticket instead of
  // shedding polite: hostile holds strictly more of the queue.
  auto p1 = runner.Submit(Histogram("p1", "polite"));
  ASSERT_TRUE(p1.ok()) << p1.status().ToString();
  const QueryOutcome& evicted = (*h2)->Wait();
  EXPECT_TRUE(evicted.shed);
  EXPECT_EQ(evicted.status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(evicted.status.ToString().find("evicted"), std::string::npos);
  // Hostile resubmitting now sheds: it no longer out-holds polite.
  auto h3 = runner.Submit(Histogram("h3", "hostile"));
  ASSERT_FALSE(h3.ok());
  EXPECT_NE(h3.status().ToString().find("admission queue full"),
            std::string::npos);
  const ServingStats stats = runner.stats();
  EXPECT_EQ(stats.shed_evicted, 1);
  EXPECT_EQ(stats.shed_queue_full, 1);
  runner.Shutdown();
}

TEST_F(ServingTest, QueuedDeadlineShedsWithoutRunning) {
  auto engine = MakeSession("deadline");
  ServingRunner runner(ServingOptions{});
  runner.AddSession(engine.get());

  auto request = QueryRequest::Builder()
                     .Task(engines::TaskOptions::Default(
                         core::TaskType::kHistogram))
                     .Tenant("test")
                     .Label("tight")
                     .Deadline(std::chrono::nanoseconds(1))
                     .Build();
  ASSERT_TRUE(request.ok());
  auto ticket = runner.Submit(*request);
  ASSERT_TRUE(ticket.ok());
  const QueryOutcome& outcome = (*ticket)->Wait();
  EXPECT_TRUE(outcome.shed);
  EXPECT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(outcome.status.ToString().find("deadline expired while queued"),
            std::string::npos);
  EXPECT_EQ(runner.stats().shed_deadline, 1);
}

TEST_F(ServingTest, CancelledTicketShedsAsCancelled) {
  auto engine = MakeSession("cancel");
  ServingRunner runner(ServingOptions{});
  // Cancel before adding the session, so the query is still queued.
  auto ticket = runner.Submit(Histogram("doomed"));
  ASSERT_TRUE(ticket.ok());
  (*ticket)->RequestCancel();
  runner.AddSession(engine.get());
  const QueryOutcome& outcome = (*ticket)->Wait();
  EXPECT_TRUE(outcome.shed);
  EXPECT_EQ(outcome.status.code(), StatusCode::kCancelled);
  EXPECT_NE(outcome.status.ToString().find("cancelled while queued"),
            std::string::npos);
  EXPECT_EQ(runner.stats().shed_cancelled, 1);
}

// ---------------------------------------------------------------------------
// Scheduling: priority classes and tenant fair share
// ---------------------------------------------------------------------------

TEST_F(ServingTest, HighPriorityDispatchesFirst) {
  auto engine = MakeSession("prio");
  ServingRunner runner(ServingOptions{});
  // Queue builds up before any session exists, so ordering is decided
  // purely by priority class.
  const engines::TaskOptions task =
      engines::TaskOptions::Default(core::TaskType::kHistogram);
  auto low = QueryRequest::Builder()
                 .Task(task)
                 .Tenant("test")
                 .Label("low")
                 .Priority(QueryPriority::kLow)
                 .Build();
  auto high = QueryRequest::Builder()
                  .Task(task)
                  .Tenant("test")
                  .Label("high")
                  .Priority(QueryPriority::kHigh)
                  .Build();
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  auto low_ticket = runner.Submit(*low);
  auto high_ticket = runner.Submit(*high);
  ASSERT_TRUE(low_ticket.ok());
  ASSERT_TRUE(high_ticket.ok());
  runner.AddSession(engine.get());
  runner.Drain();
  const QueryOutcome& low_out = (*low_ticket)->Wait();
  const QueryOutcome& high_out = (*high_ticket)->Wait();
  ASSERT_TRUE(low_out.status.ok());
  ASSERT_TRUE(high_out.status.ok());
  // The high-priority query was submitted later but dispatched first:
  // it spent less time queued despite the single session.
  EXPECT_LT(high_out.queue_seconds, low_out.queue_seconds);
}

TEST_F(ServingTest, HostileTenantCannotStarvePoliteTenant) {
  auto engine = MakeSession("fair");
  ServingOptions options;
  options.queue_capacity = 16;
  options.tenant_queue_quota = 8;
  ServingRunner runner(options);
  // Build the whole backlog before any session exists so admission
  // decisions are deterministic: hostile floods 20 queries (8 admitted,
  // 12 over quota), then polite submits its 5.
  std::vector<std::shared_ptr<QueryTicket>> hostile;
  int hostile_shed_at_submit = 0;
  for (int i = 0; i < 20; ++i) {
    auto ticket = runner.Submit(Histogram("h" + std::to_string(i), "hostile"));
    if (ticket.ok()) {
      hostile.push_back(*ticket);
    } else {
      ++hostile_shed_at_submit;
    }
  }
  std::vector<std::shared_ptr<QueryTicket>> polite;
  for (int i = 0; i < 5; ++i) {
    auto ticket = runner.Submit(Histogram("p" + std::to_string(i), "polite"));
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    polite.push_back(*ticket);
  }
  runner.AddSession(engine.get());
  runner.Drain();
  for (auto& ticket : polite) {
    EXPECT_TRUE(ticket->Wait().status.ok());
  }
  const ServingStats stats = runner.stats();
  const TenantServingStats& polite_stats = stats.tenants.at("polite");
  const TenantServingStats& hostile_stats = stats.tenants.at("hostile");
  // The fairness bound under test: a flooding tenant absorbs all the
  // shedding; the well-behaved tenant's shed rate stays at zero.
  EXPECT_EQ(polite_stats.shed, 0);
  EXPECT_EQ(polite_stats.completed_ok, 5);
  EXPECT_EQ(hostile_shed_at_submit, 12);
  EXPECT_GE(hostile_stats.shed, 12);
  EXPECT_GE(static_cast<double>(hostile_stats.shed) /
                static_cast<double>(hostile_stats.submitted),
            0.5);
}

TEST_F(ServingTest, TenantWeightsGrantProportionalShare) {
  auto engine = MakeSession("weights");
  ServingOptions options;
  options.queue_capacity = 32;
  options.fair_share_quantum = 2;
  options.tenant_weights["heavy"] = 3;
  ServingRunner runner(options);
  // Backlog first, then one session: DRR order is deterministic.
  std::vector<std::shared_ptr<QueryTicket>> heavy;
  std::vector<std::shared_ptr<QueryTicket>> light;
  for (int i = 0; i < 6; ++i) {
    auto ticket = runner.Submit(Histogram("w" + std::to_string(i), "heavy"));
    ASSERT_TRUE(ticket.ok());
    heavy.push_back(*ticket);
  }
  for (int i = 0; i < 6; ++i) {
    auto ticket = runner.Submit(Histogram("l" + std::to_string(i), "light"));
    ASSERT_TRUE(ticket.ok());
    light.push_back(*ticket);
  }
  runner.AddSession(engine.get());
  runner.Drain();
  // heavy (weight 3, quantum 2) drains all 6 in its first visit; light
  // only then starts, so every light query waited at least as long as
  // the slowest heavy one.
  double max_heavy_queue = 0.0;
  for (auto& ticket : heavy) {
    ASSERT_TRUE(ticket->Wait().status.ok());
    max_heavy_queue = std::max(max_heavy_queue, ticket->Wait().queue_seconds);
  }
  for (auto& ticket : light) {
    ASSERT_TRUE(ticket->Wait().status.ok());
    EXPECT_GE(ticket->Wait().queue_seconds, max_heavy_queue);
  }
}

// ---------------------------------------------------------------------------
// Shard routing and scatter-gather parity
// ---------------------------------------------------------------------------

TEST_F(ServingTest, RoutedQueryRequiresRoutingTable) {
  ServingRunner runner(ServingOptions{});
  auto ticket = runner.Submit(Histogram("unroutable") /* household unset */);
  ASSERT_TRUE(ticket.ok());  // All-households on one shard needs no routing.
  auto request =
      QueryRequest::Builder()
          .Task(engines::TaskOptions::Default(core::TaskType::kHistogram))
          .Tenant("test")
          .Label("routed")
          .Household(1)
          .Build();
  ASSERT_TRUE(request.ok());
  auto routed = runner.Submit(*request);
  ASSERT_FALSE(routed.ok());
  EXPECT_EQ(routed.status().code(), StatusCode::kInvalidArgument);
  runner.Shutdown();
}

TEST_F(ServingTest, RoutedQueryRejectsUnknownHousehold) {
  ServingRunner runner(ServingOptions{});
  ASSERT_TRUE(runner.OpenRouting(Source(), RoutingDir()).ok());
  auto request =
      QueryRequest::Builder()
          .Task(engines::TaskOptions::Default(core::TaskType::kHistogram))
          .Tenant("test")
          .Label("ghost")
          .Household(12345)
          .Build();
  ASSERT_TRUE(request.ok());
  auto ticket = runner.Submit(*request);
  ASSERT_FALSE(ticket.ok());
  EXPECT_EQ(ticket.status().code(), StatusCode::kNotFound);
  runner.Shutdown();
}

TEST_F(ServingTest, RoutedQueryFiltersResultsToHousehold) {
  auto e0 = MakeSession("route0");
  auto e1 = MakeSession("route1");
  ServingOptions options;
  options.num_shards = 2;
  options.keep_results = true;
  ServingRunner runner(options);
  ASSERT_TRUE(runner.OpenRouting(Source(), RoutingDir()).ok());
  runner.AddSession(e0.get());
  runner.AddSession(e1.get());

  // An unsharded all-households baseline supplies the expected rows.
  auto u = MakeSession("route_base");
  ServingOptions unsharded;
  unsharded.keep_results = true;
  ServingRunner baseline(unsharded);
  baseline.AddSession(u.get());
  auto base_ticket = baseline.Submit(Histogram("base"));
  ASSERT_TRUE(base_ticket.ok());
  const QueryOutcome& base = (*base_ticket)->Wait();
  ASSERT_TRUE(base.status.ok());
  const auto& all = base.results.Get<core::HistogramResult>();
  ASSERT_EQ(all.size(), static_cast<size_t>(kHouseholds));

  // Both the first and the last household route correctly (they live on
  // different shards) and come back filtered to one bit-identical row.
  for (const core::HistogramResult& expected : {all.front(), all.back()}) {
    auto request =
        QueryRequest::Builder()
            .Task(engines::TaskOptions::Default(core::TaskType::kHistogram))
            .Tenant("test")
            .Label("h" + std::to_string(expected.household_id))
            .Household(expected.household_id)
            .Build();
    ASSERT_TRUE(request.ok());
    auto ticket = runner.Submit(*request);
    ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
    const QueryOutcome& outcome = (*ticket)->Wait();
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    const auto& rows = outcome.results.Get<core::HistogramResult>();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].household_id, expected.household_id);
    EXPECT_EQ(rows[0].histogram.counts, expected.histogram.counts);
  }
  runner.Shutdown();
  baseline.Shutdown();
}

TEST_F(ServingTest, ShardedScatterBitIdenticalToUnsharded) {
  // Four shards, one session each, vs a single unsharded session: the
  // all-households scatter-gather must reproduce the unsharded result
  // bit for bit (RunGather's household merge restores batch order).
  std::vector<std::unique_ptr<engines::SystemCEngine>> sharded_engines;
  ServingOptions options;
  options.num_shards = 4;
  options.keep_results = true;
  ServingRunner sharded(options);
  ASSERT_TRUE(sharded.OpenRouting(Source(), RoutingDir()).ok());
  for (int s = 0; s < 4; ++s) {
    sharded_engines.push_back(MakeSession("scat" + std::to_string(s)));
    sharded.AddSession(sharded_engines.back().get());
  }
  auto u = MakeSession("scat_base");
  ServingOptions unsharded;
  unsharded.keep_results = true;
  ServingRunner baseline(unsharded);
  baseline.AddSession(u.get());

  auto sharded_ticket = sharded.Submit(Histogram("scatter"));
  auto baseline_ticket = baseline.Submit(Histogram("base"));
  ASSERT_TRUE(sharded_ticket.ok()) << sharded_ticket.status().ToString();
  ASSERT_TRUE(baseline_ticket.ok());
  const QueryOutcome& got = (*sharded_ticket)->Wait();
  const QueryOutcome& want = (*baseline_ticket)->Wait();
  ASSERT_TRUE(got.status.ok()) << got.status.ToString();
  ASSERT_TRUE(want.status.ok()) << want.status.ToString();
  ExpectHistogramsBitIdentical(got.results, want.results);

  // The scatter outcome reports the synthetic fan-out stage followed by
  // the gather plan's rows, and counts once in the runner's stats.
  ASSERT_FALSE(got.stages.empty());
  EXPECT_EQ(got.stages[0].name, "scatter");
  EXPECT_EQ(got.stages[0].partitions, 4);
  const ServingStats stats = sharded.stats();
  EXPECT_EQ(stats.submitted, 1);
  EXPECT_EQ(stats.admitted, 1);
  EXPECT_EQ(stats.completed_ok, 1);
  sharded.Shutdown();
  baseline.Shutdown();
}

TEST_F(ServingTest, ShardedSimilarityBitIdenticalToUnsharded) {
  // Similarity is the cross-household task: each shard scores only its
  // own query rows but against ALL candidates, so the gathered result
  // must match the unsharded run exactly.
  std::vector<std::unique_ptr<engines::SystemCEngine>> sharded_engines;
  ServingOptions options;
  options.num_shards = 4;
  options.keep_results = true;
  ServingRunner sharded(options);
  ASSERT_TRUE(sharded.OpenRouting(Source(), RoutingDir()).ok());
  for (int s = 0; s < 4; ++s) {
    sharded_engines.push_back(MakeSession("sim" + std::to_string(s)));
    sharded.AddSession(sharded_engines.back().get());
  }
  auto u = MakeSession("sim_base");
  ServingOptions unsharded;
  unsharded.keep_results = true;
  ServingRunner baseline(unsharded);
  baseline.AddSession(u.get());

  auto MakeSimilarity = [](const std::string& label) {
    return *QueryRequest::Builder()
                .Task(engines::TaskOptions::Default(
                    core::TaskType::kSimilarity))
                .Tenant("test")
                .Label(label)
                .Build();
  };
  auto sharded_ticket = sharded.Submit(MakeSimilarity("scatter-sim"));
  auto baseline_ticket = baseline.Submit(MakeSimilarity("base-sim"));
  ASSERT_TRUE(sharded_ticket.ok()) << sharded_ticket.status().ToString();
  ASSERT_TRUE(baseline_ticket.ok());
  const QueryOutcome& got = (*sharded_ticket)->Wait();
  const QueryOutcome& want = (*baseline_ticket)->Wait();
  ASSERT_TRUE(got.status.ok()) << got.status.ToString();
  ASSERT_TRUE(want.status.ok()) << want.status.ToString();
  const auto& g = got.results.Get<core::SimilarityResult>();
  const auto& w = want.results.Get<core::SimilarityResult>();
  ASSERT_EQ(g.size(), w.size());
  for (size_t i = 0; i < g.size(); ++i) {
    EXPECT_EQ(g[i].household_id, w[i].household_id);
    ASSERT_EQ(g[i].matches.size(), w[i].matches.size());
    for (size_t m = 0; m < g[i].matches.size(); ++m) {
      EXPECT_EQ(g[i].matches[m].household_id, w[i].matches[m].household_id);
      EXPECT_EQ(g[i].matches[m].cosine, w[i].matches[m].cosine);
    }
  }
  sharded.Shutdown();
  baseline.Shutdown();
}

// ---------------------------------------------------------------------------
// Alert surface (lambda speed layer -> serving queries)
// ---------------------------------------------------------------------------

TEST_F(ServingTest, QueryAlertsRequiresAttachedLog) {
  ServingRunner runner(ServingOptions{});
  auto alerts = runner.QueryAlerts(streaming::AlertQuery{});
  ASSERT_FALSE(alerts.ok());
  EXPECT_EQ(alerts.status().code(), StatusCode::kNotFound);
  runner.Shutdown();
}

TEST_F(ServingTest, QueryAlertsServesStreamDetections) {
  // End-to-end speed-layer wiring: the stream processor's detector
  // alerts land in an AlertLog, and serving clients read them through
  // the same runner that answers routed queries.
  streaming::AlertLog log;
  streaming::StreamProcessor processor;
  processor.AddDetectorPrototype(std::make_unique<streaming::SpikeDetector>());
  processor.SetAlertSink(
      [&log](const streaming::Alert& alert) { log.Record(alert); });
  for (int64_t h = 0; h < 60; ++h) {
    double kwh = 0.5;
    if (h == 40) kwh = 9.0;  // household 1 spikes once
    ASSERT_TRUE(processor.Process({1, h, kwh, 10.0}).ok());
    ASSERT_TRUE(processor.Process({2, h, 0.5, 10.0}).ok());
  }
  ASSERT_GE(log.total_recorded(), 1);

  ServingRunner runner(ServingOptions{});
  runner.AttachAlertLog(&log);
  streaming::AlertQuery query;
  query.household_id = 1;
  auto alerts = runner.QueryAlerts(query);
  ASSERT_TRUE(alerts.ok()) << alerts.status().ToString();
  ASSERT_FALSE(alerts->empty());
  EXPECT_EQ((*alerts)[0].household_id, 1);
  EXPECT_EQ((*alerts)[0].hour, 40);

  // The quiet household has nothing on file.
  query.household_id = 2;
  auto quiet = runner.QueryAlerts(query);
  ASSERT_TRUE(quiet.ok());
  EXPECT_TRUE(quiet->empty());
  runner.Shutdown();
}

// ---------------------------------------------------------------------------
// Drain / shutdown safety
// ---------------------------------------------------------------------------

TEST_F(ServingTest, ShutdownResolvesQueuedTickets) {
  ServingRunner runner(ServingOptions{});
  // Never add a session: queued queries must still resolve on Shutdown
  // instead of hanging their waiters.
  auto ticket = runner.Submit(Histogram("stranded"));
  ASSERT_TRUE(ticket.ok());
  runner.Shutdown();
  const QueryOutcome& outcome = (*ticket)->Wait();
  EXPECT_TRUE(outcome.shed);
  EXPECT_FALSE(outcome.status.ok());

  // Submit after shutdown sheds immediately.
  auto late = runner.Submit(Histogram("late"));
  EXPECT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ServingTest, DrainWaitsForAllAdmitted) {
  auto e1 = MakeSession("d1");
  auto e2 = MakeSession("d2");
  ServingRunner runner(ServingOptions{});
  runner.AddSession(e1.get());
  runner.AddSession(e2.get());
  std::vector<std::shared_ptr<QueryTicket>> tickets;
  for (int i = 0; i < 12; ++i) {
    auto ticket = runner.Submit(Histogram("drain" + std::to_string(i)));
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(*ticket);
  }
  runner.Drain();
  for (auto& ticket : tickets) {
    EXPECT_TRUE(ticket->done());
  }
  EXPECT_EQ(runner.stats().completed_ok, 12);
}

TEST_F(ServingTest, ConcurrentClientsAllResolve) {
  auto e1 = MakeSession("c1");
  auto e2 = MakeSession("c2");
  ServingOptions options;
  options.queue_capacity = 256;
  ServingRunner runner(options);
  runner.AddSession(e1.get());
  runner.AddSession(e2.get());
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&runner, &ok, c] {
      for (int q = 0; q < 5; ++q) {
        auto ticket = runner.Submit(Histogram(
            "c" + std::to_string(c) + "/q" + std::to_string(q),
            "tenant-" + std::to_string(c)));
        if (ticket.ok() && (*ticket)->Wait().status.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), 20);
  EXPECT_EQ(runner.stats().completed_ok, 20);
}

}  // namespace
}  // namespace smartmeter::exec
