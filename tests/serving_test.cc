// ServingRunner behaviour: admission, shedding (queue-full, deadline,
// cancel), priority ordering, drain/shutdown safety, and stats.
#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/seed_generator.h"
#include "engines/systemc_engine.h"
#include "exec/serving_runner.h"
#include "storage/csv.h"
#include "timeseries/calendar.h"

namespace smartmeter::exec {
namespace {

namespace fs = std::filesystem;

class ServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new fs::path(fs::path(::testing::TempDir()) / "serving_test");
    fs::create_directories(*dir_);
    datagen::SeedGeneratorOptions options;
    options.num_households = 8;
    options.hours = kHoursPerYear;
    options.seed = 99;
    MeterDataset dataset = *datagen::GenerateSeedDataset(options);
    single_csv_ = (*dir_ / "data.csv").string();
    ASSERT_TRUE(storage::WriteReadingsCsv(dataset, single_csv_).ok());
  }
  static void TearDownTestSuite() {
    std::error_code ec;
    fs::remove_all(*dir_, ec);
    delete dir_;
  }

  /// A fresh attached SystemC session spooling under `tag`.
  static std::unique_ptr<engines::SystemCEngine> MakeSession(
      const std::string& tag) {
    auto engine = std::make_unique<engines::SystemCEngine>(
        (*dir_ / ("spool_" + tag)).string());
    EXPECT_TRUE(
        engine->Attach(*table::DataSource::SingleCsv(single_csv_)).ok());
    return engine;
  }

  static QueryRequest Histogram(const std::string& label) {
    QueryRequest request;
    request.options =
        engines::TaskOptions::Default(core::TaskType::kHistogram);
    request.label = label;
    return request;
  }

  static fs::path* dir_;
  static std::string single_csv_;
};

fs::path* ServingTest::dir_ = nullptr;
std::string ServingTest::single_csv_;

TEST_F(ServingTest, AttachSessionValidatesThenServes) {
  engines::SystemCEngine engine((*dir_ / "spool_attach").string());
  ServingOptions options;
  options.keep_results = true;
  ServingRunner runner(options);

  // A malformed source (missing file) must be rejected before the
  // session enters the pool.
  table::DataSource missing;
  missing.layout = table::DataSource::Layout::kSingleCsv;
  missing.files = {(*dir_ / "nope.csv").string()};
  EXPECT_FALSE(runner.AttachSession(&engine, missing).ok());
  EXPECT_EQ(runner.num_sessions(), 0u);

  auto attach = runner.AttachSession(
      &engine, *table::DataSource::SingleCsv(single_csv_));
  ASSERT_TRUE(attach.ok()) << attach.status().ToString();
  EXPECT_GE(*attach, 0.0);
  EXPECT_EQ(runner.num_sessions(), 1u);

  auto ticket = runner.Submit(Histogram("attach-q"));
  ASSERT_TRUE(ticket.ok());
  const QueryOutcome& outcome = (*ticket)->Wait();
  EXPECT_TRUE(outcome.status.ok());
  runner.Shutdown();
}

TEST_F(ServingTest, ServesQueriesAcrossSessions) {
  auto e1 = MakeSession("s1");
  auto e2 = MakeSession("s2");
  ServingOptions options;
  options.keep_results = true;
  ServingRunner runner(options);
  runner.AddSession(e1.get());
  runner.AddSession(e2.get());
  EXPECT_EQ(runner.num_sessions(), 2u);

  std::vector<std::shared_ptr<QueryTicket>> tickets;
  for (int i = 0; i < 8; ++i) {
    auto ticket = runner.Submit(Histogram("q" + std::to_string(i)));
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(*ticket);
  }
  for (auto& ticket : tickets) {
    const QueryOutcome& outcome = ticket->Wait();
    EXPECT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    EXPECT_FALSE(outcome.shed);
    EXPECT_GT(outcome.query_id, 0u);
    EXPECT_TRUE(outcome.results.Holds<core::HistogramResult>());
    EXPECT_EQ(outcome.results.size(), 8u);  // One result per household.
  }
  const ServingStats stats = runner.stats();
  EXPECT_EQ(stats.submitted, 8);
  EXPECT_EQ(stats.admitted, 8);
  EXPECT_EQ(stats.completed_ok, 8);
  EXPECT_EQ(stats.shed_queue_full, 0);
}

TEST_F(ServingTest, QueueFullShedsWithResourceExhausted) {
  auto engine = MakeSession("full");
  ServingOptions options;
  options.queue_capacity = 1;
  ServingRunner runner(options);
  // No AddSession yet: nothing drains the queue, so capacity is exact.
  auto first = runner.Submit(Histogram("fits"));
  ASSERT_TRUE(first.ok());
  auto second = runner.Submit(Histogram("shed"));
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(runner.stats().shed_queue_full, 1);

  // Once a session drains the queue, admission recovers.
  runner.AddSession(engine.get());
  (*first)->Wait();
  auto third = runner.Submit(Histogram("admitted"));
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE((*third)->Wait().status.ok());
}

TEST_F(ServingTest, QueuedDeadlineShedsWithoutRunning) {
  auto engine = MakeSession("deadline");
  ServingRunner runner(ServingOptions{});
  runner.AddSession(engine.get());

  QueryRequest request = Histogram("tight");
  request.deadline = std::chrono::nanoseconds(1);
  auto ticket = runner.Submit(std::move(request));
  ASSERT_TRUE(ticket.ok());
  const QueryOutcome& outcome = (*ticket)->Wait();
  EXPECT_TRUE(outcome.shed);
  EXPECT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(runner.stats().shed_deadline, 1);
}

TEST_F(ServingTest, CancelledTicketShedsAsCancelled) {
  auto engine = MakeSession("cancel");
  ServingRunner runner(ServingOptions{});
  // Cancel before adding the session, so the query is still queued.
  auto ticket = runner.Submit(Histogram("doomed"));
  ASSERT_TRUE(ticket.ok());
  (*ticket)->RequestCancel();
  runner.AddSession(engine.get());
  const QueryOutcome& outcome = (*ticket)->Wait();
  EXPECT_TRUE(outcome.shed);
  EXPECT_EQ(outcome.status.code(), StatusCode::kCancelled);
  EXPECT_EQ(runner.stats().shed_cancelled, 1);
}

TEST_F(ServingTest, HighPriorityDispatchesFirst) {
  auto engine = MakeSession("prio");
  ServingRunner runner(ServingOptions{});
  // Queue builds up before any session exists, so ordering is decided
  // purely by priority class.
  QueryRequest low = Histogram("low");
  low.priority = QueryPriority::kLow;
  QueryRequest high = Histogram("high");
  high.priority = QueryPriority::kHigh;
  auto low_ticket = runner.Submit(std::move(low));
  auto high_ticket = runner.Submit(std::move(high));
  ASSERT_TRUE(low_ticket.ok());
  ASSERT_TRUE(high_ticket.ok());
  runner.AddSession(engine.get());
  runner.Drain();
  const QueryOutcome& low_out = (*low_ticket)->Wait();
  const QueryOutcome& high_out = (*high_ticket)->Wait();
  ASSERT_TRUE(low_out.status.ok());
  ASSERT_TRUE(high_out.status.ok());
  // The high-priority query was submitted later but dispatched first:
  // it spent less time queued despite the single session.
  EXPECT_LT(high_out.queue_seconds, low_out.queue_seconds);
}

TEST_F(ServingTest, ShutdownResolvesQueuedTickets) {
  ServingRunner runner(ServingOptions{});
  // Never add a session: queued queries must still resolve on Shutdown
  // instead of hanging their waiters.
  auto ticket = runner.Submit(Histogram("stranded"));
  ASSERT_TRUE(ticket.ok());
  runner.Shutdown();
  const QueryOutcome& outcome = (*ticket)->Wait();
  EXPECT_TRUE(outcome.shed);
  EXPECT_FALSE(outcome.status.ok());

  // Submit after shutdown sheds immediately.
  auto late = runner.Submit(Histogram("late"));
  EXPECT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ServingTest, DrainWaitsForAllAdmitted) {
  auto e1 = MakeSession("d1");
  auto e2 = MakeSession("d2");
  ServingRunner runner(ServingOptions{});
  runner.AddSession(e1.get());
  runner.AddSession(e2.get());
  std::vector<std::shared_ptr<QueryTicket>> tickets;
  for (int i = 0; i < 12; ++i) {
    auto ticket = runner.Submit(Histogram("drain" + std::to_string(i)));
    ASSERT_TRUE(ticket.ok());
    tickets.push_back(*ticket);
  }
  runner.Drain();
  for (auto& ticket : tickets) {
    EXPECT_TRUE(ticket->done());
  }
  EXPECT_EQ(runner.stats().completed_ok, 12);
}

TEST_F(ServingTest, ConcurrentClientsAllResolve) {
  auto e1 = MakeSession("c1");
  auto e2 = MakeSession("c2");
  ServingOptions options;
  options.queue_capacity = 256;
  ServingRunner runner(options);
  runner.AddSession(e1.get());
  runner.AddSession(e2.get());
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&runner, &ok, c] {
      for (int q = 0; q < 5; ++q) {
        auto ticket = runner.Submit(
            Histogram("c" + std::to_string(c) + "/q" + std::to_string(q)));
        if (ticket.ok() && (*ticket)->Wait().status.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(ok.load(), 20);
  EXPECT_EQ(runner.stats().completed_ok, 20);
}

}  // namespace
}  // namespace smartmeter::exec
