#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/par_task.h"
#include "datagen/seed_generator.h"
#include "obs/metrics.h"
#include "streaming/alert_log.h"
#include "streaming/detectors.h"
#include "streaming/stream_processor.h"
#include "table/delta_store.h"
#include "timeseries/calendar.h"

namespace smartmeter::streaming {
namespace {

StreamReading Reading(int64_t hour, double kwh, double temp = 10.0,
                      int64_t household = 1) {
  return {household, hour, kwh, temp};
}

// ---------------------------------------------------------------------------
// EwmaDetector
// ---------------------------------------------------------------------------

TEST(EwmaDetectorTest, NoAlertsOnSteadyNoise) {
  EwmaDetector detector;
  Rng rng(1);
  for (int h = 0; h < 1000; ++h) {
    const double kwh = 1.0 + rng.Gaussian(0.0, 0.05);
    EXPECT_FALSE(detector.Observe(Reading(h, kwh)).has_value()) << h;
  }
}

TEST(EwmaDetectorTest, FlagsLargeDeviation) {
  EwmaDetector detector;
  Rng rng(2);
  for (int h = 0; h < 200; ++h) {
    (void)detector.Observe(Reading(h, 1.0 + rng.Gaussian(0.0, 0.05)));
  }
  auto alert = detector.Observe(Reading(200, 8.0));
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->kind, AlertKind::kDeviation);
  EXPECT_EQ(alert->household_id, 1);
  EXPECT_EQ(alert->hour, 200);
  EXPECT_GT(alert->score, 4.0);
  EXPECT_NEAR(alert->expected, 1.0, 0.2);
}

TEST(EwmaDetectorTest, NoAlertsDuringWarmup) {
  EwmaDetector::Options options;
  options.warmup_readings = 48;
  EwmaDetector detector(options);
  // Even wild readings are swallowed during warm-up.
  for (int h = 0; h < 48; ++h) {
    EXPECT_FALSE(
        detector.Observe(Reading(h, h % 2 == 0 ? 0.1 : 9.0)).has_value());
  }
}

TEST(EwmaDetectorTest, AnomalyDoesNotPoisonEnvelope) {
  EwmaDetector detector;
  Rng rng(3);
  for (int h = 0; h < 100; ++h) {
    (void)detector.Observe(Reading(h, 1.0 + rng.Gaussian(0.0, 0.05)));
  }
  const double mean_before = detector.mean();
  (void)detector.Observe(Reading(100, 50.0));  // Flagged, not absorbed.
  EXPECT_DOUBLE_EQ(detector.mean(), mean_before);
}

TEST(EwmaDetectorTest, CloneIsFresh) {
  EwmaDetector detector;
  for (int h = 0; h < 100; ++h) {
    (void)detector.Observe(Reading(h, 5.0));
  }
  auto clone = detector.Clone();
  // The clone has no history: a 5.0 reading is mid-warmup, not normal.
  EXPECT_FALSE(clone->Observe(Reading(0, 5.0)).has_value());
  EXPECT_NE(detector.mean(), 0.0);
}

// ---------------------------------------------------------------------------
// SpikeDetector
// ---------------------------------------------------------------------------

TEST(SpikeDetectorTest, FlagsJumpAfterWarmup) {
  SpikeDetector detector;
  for (int h = 0; h < 48; ++h) {
    EXPECT_FALSE(detector.Observe(Reading(h, 0.8)).has_value());
  }
  auto alert = detector.Observe(Reading(48, 7.0));
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->kind, AlertKind::kSpike);
}

TEST(SpikeDetectorTest, GradualRampDoesNotAlert) {
  SpikeDetector detector;
  double kwh = 0.5;
  for (int h = 0; h < 500; ++h) {
    EXPECT_FALSE(detector.Observe(Reading(h, kwh)).has_value()) << h;
    kwh *= 1.01;  // +1% per hour, never a jump.
  }
}

TEST(SpikeDetectorTest, MinJumpSuppressesTinyBases) {
  SpikeDetector detector;  // min_jump = 0.5 kWh.
  for (int h = 0; h < 48; ++h) {
    (void)detector.Observe(Reading(h, 0.01));
  }
  // 0.01 -> 0.3 is 30x but under the absolute floor.
  EXPECT_FALSE(detector.Observe(Reading(48, 0.3)).has_value());
}

// ---------------------------------------------------------------------------
// FlatlineDetector
// ---------------------------------------------------------------------------

TEST(FlatlineDetectorTest, FlagsStuckMeterOnce) {
  FlatlineDetector detector;
  int alerts = 0;
  for (int h = 0; h < 100; ++h) {
    if (detector.Observe(Reading(h, 1.234)).has_value()) ++alerts;
  }
  EXPECT_EQ(alerts, 1);  // One alert per stuck episode.
}

TEST(FlatlineDetectorTest, VaryingReadingsNeverAlert) {
  FlatlineDetector detector;
  Rng rng(5);
  for (int h = 0; h < 500; ++h) {
    EXPECT_FALSE(
        detector.Observe(Reading(h, 1.0 + rng.NextDouble() * 0.01))
            .has_value());
  }
}

TEST(FlatlineDetectorTest, RecoversAfterEpisode) {
  FlatlineDetector detector;
  int alerts = 0;
  for (int h = 0; h < 30; ++h) {
    if (detector.Observe(Reading(h, 2.0)).has_value()) ++alerts;
  }
  // Normal variation resumes, then the meter sticks again.
  for (int h = 30; h < 40; ++h) {
    (void)detector.Observe(Reading(h, 1.0 + 0.1 * h));
  }
  for (int h = 40; h < 80; ++h) {
    if (detector.Observe(Reading(h, 3.0)).has_value()) ++alerts;
  }
  EXPECT_EQ(alerts, 2);
}

// ---------------------------------------------------------------------------
// ProfileDetector
// ---------------------------------------------------------------------------

core::DailyProfileResult FlatProfile(double level, double beta) {
  core::DailyProfileResult profile;
  profile.household_id = 1;
  profile.profile.assign(24, level);
  profile.temperature_beta.assign(24, beta);
  return profile;
}

TEST(ProfileDetectorTest, ExpectedTracksProfileAndTemperature) {
  ProfileDetector detector(FlatProfile(1.0, 0.1));
  EXPECT_DOUBLE_EQ(detector.ExpectedAt(3, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(detector.ExpectedAt(3, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(detector.ExpectedAt(3, -20.0), 0.0);  // Clamped.
}

TEST(ProfileDetectorTest, AlertOnlyOutsideBand) {
  ProfileDetector detector(FlatProfile(1.0, 0.0));
  EXPECT_FALSE(detector.Observe(Reading(0, 1.4)).has_value());
  auto alert = detector.Observe(Reading(1, 3.5));
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->kind, AlertKind::kOffProfile);
  EXPECT_DOUBLE_EQ(alert->expected, 1.0);
}

TEST(ProfileDetectorTest, BatchModelDrivesStreamDetection) {
  // End-to-end bridge: fit a PAR model on a synthetic household, then
  // stream the same year; almost nothing should alert, but an injected
  // outage-then-rebound hour must.
  datagen::SeedGeneratorOptions options;
  options.num_households = 1;
  options.seed = 99;
  auto dataset = datagen::GenerateSeedDataset(options);
  ASSERT_TRUE(dataset.ok());
  const auto& consumer = dataset->consumer(0);
  auto model = core::ComputeDailyProfile(
      consumer.consumption, dataset->temperature(), consumer.household_id);
  ASSERT_TRUE(model.ok());

  ProfileDetector::Options detector_options;
  detector_options.relative_tolerance = 3.0;
  detector_options.min_band = 1.5;
  ProfileDetector detector(*model, detector_options);
  int alerts = 0;
  for (int h = 0; h < kHoursPerYear; ++h) {
    double kwh = consumer.consumption[static_cast<size_t>(h)];
    if (h == 5000) kwh += 12.0;  // Injected anomaly.
    StreamReading reading{consumer.household_id, h, kwh,
                          dataset->temperature()[static_cast<size_t>(h)]};
    auto alert = detector.Observe(reading);
    if (alert.has_value()) {
      ++alerts;
      EXPECT_EQ(alert->hour, 5000);
    }
  }
  EXPECT_EQ(alerts, 1);
}

// ---------------------------------------------------------------------------
// StreamProcessor
// ---------------------------------------------------------------------------

TEST(StreamProcessorTest, RoutesPerHousehold) {
  StreamProcessor processor;
  processor.AddDetectorPrototype(std::make_unique<EwmaDetector>());
  std::vector<Alert> alerts;
  processor.SetAlertSink([&alerts](const Alert& a) {
    alerts.push_back(a);
  });
  Rng rng(7);
  // Two interleaved households; household 2 spikes at hour 300.
  for (int h = 0; h < 400; ++h) {
    ASSERT_TRUE(processor
                    .Process(Reading(h, 1.0 + rng.Gaussian(0, 0.03), 10.0,
                                     1))
                    .ok());
    const double kwh2 = (h == 300) ? 9.0 : 2.0 + rng.Gaussian(0, 0.03);
    ASSERT_TRUE(processor.Process(Reading(h, kwh2, 10.0, 2)).ok());
  }
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].household_id, 2);
  EXPECT_EQ(alerts[0].hour, 300);
  EXPECT_EQ(processor.households_seen(), 2u);
  EXPECT_EQ(processor.readings_processed(), 800);
  EXPECT_EQ(processor.alerts_raised(), 1);
}

TEST(StreamProcessorTest, RejectsOutOfOrderReadings) {
  StreamProcessor processor;
  ASSERT_TRUE(processor.Process(Reading(5, 1.0)).ok());
  EXPECT_FALSE(processor.Process(Reading(5, 1.0)).ok());
  EXPECT_FALSE(processor.Process(Reading(4, 1.0)).ok());
  EXPECT_TRUE(processor.Process(Reading(6, 1.0)).ok());
}

TEST(StreamProcessorTest, TumblingWindowsSummarize) {
  StreamProcessor::Options options;
  options.window_hours = 24;
  StreamProcessor processor(options);
  std::vector<WindowSummary> windows;
  processor.SetWindowSink([&windows](const WindowSummary& w) {
    windows.push_back(w);
  });
  for (int h = 0; h < 48; ++h) {
    ASSERT_TRUE(
        processor.Process(Reading(h, h == 30 ? 5.0 : 1.0)).ok());
  }
  processor.FlushWindows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].window_start_hour, 0);
  EXPECT_DOUBLE_EQ(windows[0].total_kwh, 24.0);
  EXPECT_DOUBLE_EQ(windows[1].peak_kwh, 5.0);
  EXPECT_EQ(windows[1].peak_hour, 6);  // Hour 30 = 6th hour of day 2.
  EXPECT_DOUBLE_EQ(windows[1].total_kwh, 23.0 + 5.0);
}

TEST(StreamProcessorTest, HouseholdSpecificDetectors) {
  StreamProcessor processor;
  processor.AddHouseholdDetector(
      7, std::make_unique<ProfileDetector>(FlatProfile(1.0, 0.0)));
  std::vector<Alert> alerts;
  processor.SetAlertSink([&alerts](const Alert& a) {
    alerts.push_back(a);
  });
  // Household 7 has the detector; household 8 has none.
  ASSERT_TRUE(processor.Process(Reading(0, 9.0, 10.0, 7)).ok());
  ASSERT_TRUE(processor.Process(Reading(0, 9.0, 10.0, 8)).ok());
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].household_id, 7);
}

TEST(StreamProcessorTest, NoSinksIsSafe) {
  StreamProcessor processor;
  processor.AddDetectorPrototype(std::make_unique<SpikeDetector>());
  for (int h = 0; h < 60; ++h) {
    ASSERT_TRUE(
        processor.Process(Reading(h, h == 50 ? 9.0 : 0.5)).ok());
  }
  EXPECT_GE(processor.alerts_raised(), 1);
  processor.FlushWindows();
}

TEST(StreamProcessorTest, WatermarkAcceptsBoundedLateness) {
  StreamProcessor::Options options;
  options.late_allowance_hours = 3;
  StreamProcessor processor(options);
  const int64_t late_before =
      obs::MetricsRegistry::Global().GetCounter("streaming.readings.late")
          ->Value();

  ASSERT_TRUE(processor.Process(Reading(10, 1.0)).ok());
  // Up to 3 hours behind the household's newest hour is still in order.
  EXPECT_TRUE(processor.Process(Reading(8, 1.0)).ok());
  EXPECT_TRUE(processor.Process(Reading(7, 1.0)).ok());
  EXPECT_TRUE(processor.Process(Reading(9, 1.0)).ok());

  // Hour 6 is 4 behind: below the watermark, rejected as late.
  auto late = processor.Process(Reading(6, 1.0));
  EXPECT_EQ(late.code(), StatusCode::kOutOfRange) << late.ToString();
  // Hour 8 was already accepted: a repeat is a duplicate, not late.
  auto duplicate = processor.Process(Reading(8, 1.0));
  EXPECT_EQ(duplicate.code(), StatusCode::kAlreadyExists)
      << duplicate.ToString();

  EXPECT_EQ(processor.readings_processed(), 4);
  EXPECT_EQ(processor.readings_late(), 1);
  EXPECT_EQ(obs::MetricsRegistry::Global()
                .GetCounter("streaming.readings.late")
                ->Value(),
            late_before + 1);

  // The watermark is per household: a fresh household starts clean.
  EXPECT_TRUE(processor.Process(Reading(0, 1.0, 10.0, 2)).ok());
}

TEST(StreamProcessorTest, PeakTieBreaksToEarliestHourRegardlessOfArrival) {
  StreamProcessor::Options options;
  options.window_hours = 24;
  options.late_allowance_hours = 4;
  StreamProcessor processor(options);
  std::vector<WindowSummary> windows;
  processor.SetWindowSink(
      [&windows](const WindowSummary& w) { windows.push_back(w); });

  // Offset 5 reaches the 5.0 peak first by arrival; the equal peak at
  // offset 3 arrives late. The summary must name offset 3 -- the
  // earliest peak hour -- so results match a batch pass over the same
  // window, independent of arrival order.
  for (int64_t h : {0, 1, 2, 4}) {
    ASSERT_TRUE(processor.Process(Reading(h, 1.0)).ok());
  }
  ASSERT_TRUE(processor.Process(Reading(5, 5.0)).ok());
  ASSERT_TRUE(processor.Process(Reading(3, 5.0)).ok());  // late equal peak
  for (int64_t h = 6; h < 24; ++h) {
    // A later equal peak must not displace the earliest one either.
    ASSERT_TRUE(processor.Process(Reading(h, h == 9 ? 5.0 : 1.0)).ok());
  }
  processor.FlushWindows();

  ASSERT_EQ(windows.size(), 1u);
  EXPECT_DOUBLE_EQ(windows[0].peak_kwh, 5.0);
  EXPECT_EQ(windows[0].peak_hour, 3);
  EXPECT_DOUBLE_EQ(windows[0].total_kwh, 21.0 * 1.0 + 3.0 * 5.0);
}

TEST(StreamProcessorTest, WindowsCloseOnlyPastTheAllowance) {
  // With bounded lateness a window must stay open for `allowance` hours
  // past its end -- closing it at the boundary would lose late readings
  // that are still admissible.
  StreamProcessor::Options options;
  options.window_hours = 4;
  options.late_allowance_hours = 2;
  StreamProcessor processor(options);
  std::vector<WindowSummary> windows;
  processor.SetWindowSink(
      [&windows](const WindowSummary& w) { windows.push_back(w); });

  for (int64_t h = 0; h < 5; ++h) {
    ASSERT_TRUE(processor.Process(Reading(h, 1.0)).ok());
  }
  // Hour 5 would have closed window [0, 4) without an allowance; with
  // allowance 2 it is still open and hour 3's late peak lands in it.
  EXPECT_TRUE(windows.empty());
  ASSERT_TRUE(processor.Process(Reading(5, 1.0)).ok());
  EXPECT_TRUE(windows.empty());
  // Reaching hour 6 (= window end 4 + allowance 2) seals the window.
  ASSERT_TRUE(processor.Process(Reading(6, 1.0)).ok());
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].window_start_hour, 0);
  EXPECT_DOUBLE_EQ(windows[0].total_kwh, 4.0);
}

TEST(StreamProcessorTest, DeltaSinkReceivesEveryAcceptedReading) {
  table::DeltaStore store;
  StreamProcessor::Options options;
  options.late_allowance_hours = 2;
  options.delta = &store;
  StreamProcessor processor(options);

  ASSERT_TRUE(processor.Process(Reading(0, 1.5, 20.0, 1)).ok());
  ASSERT_TRUE(processor.Process(Reading(1, 2.5, 21.0, 1)).ok());
  ASSERT_TRUE(processor.Process(Reading(1, 4.0, 21.0, 2)).ok());
  // Processor-side rejections never reach the store.
  EXPECT_FALSE(processor.Process(Reading(1, 9.9, 21.0, 1)).ok());
  EXPECT_EQ(store.version(), 3u);

  table::DeltaTableReader reader(&store);
  ASSERT_TRUE(reader.Open().ok());
  auto batch = reader.NewBatch();
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->count(), 2u);
  ASSERT_EQ(batch->hours(), 2u);
  EXPECT_EQ(batch->consumption(0)[0], 1.5);
  EXPECT_EQ(batch->consumption(0)[1], 2.5);
  EXPECT_EQ(batch->consumption(1)[0], 0.0);  // gap: household 2 joined late
  EXPECT_EQ(batch->consumption(1)[1], 4.0);
  EXPECT_EQ(batch->temperature()[1], 21.0);
}

TEST(StreamProcessorTest, DeltaStoreRejectionLeavesProcessorClean) {
  // The store's global publish lag can trail the per-household
  // allowance. A store-side rejection must reject the reading here too
  // and leave the processor state byte-for-byte untouched, so a retry
  // sees the same answer (not a bogus duplicate).
  table::DeltaStore store;
  StreamProcessor::Options options;
  options.late_allowance_hours = 10;
  options.delta = &store;
  StreamProcessor processor(options);

  ASSERT_TRUE(processor.Process(Reading(20, 1.0)).ok());
  (void)store.Snapshot();  // publishes hours [0, 21): they are now sealed

  // Hour 15 passes the processor watermark (20 - 10) but is below the
  // store's published extent.
  auto rejected = processor.Process(Reading(15, 1.0));
  EXPECT_EQ(rejected.code(), StatusCode::kOutOfRange) << rejected.ToString();
  EXPECT_EQ(processor.readings_processed(), 1);
  EXPECT_EQ(store.version(), 1u);

  // Retry gives the same clean rejection -- the processor did not mark
  // hour 15 as seen.
  auto retried = processor.Process(Reading(15, 1.0));
  EXPECT_EQ(retried.code(), StatusCode::kOutOfRange) << retried.ToString();

  // In-range hours still flow.
  EXPECT_TRUE(processor.Process(Reading(21, 1.0)).ok());
  EXPECT_EQ(store.version(), 2u);
}

TEST(StreamProcessorTest, FlushWindowsEmitsDeterministicOrder) {
  StreamProcessor::Options options;
  options.window_hours = 2;
  options.late_allowance_hours = 1;
  StreamProcessor processor(options);
  std::vector<WindowSummary> windows;
  processor.SetWindowSink(
      [&windows](const WindowSummary& w) { windows.push_back(w); });

  // Interleave households in a scrambled order; flush must emit in
  // ascending (household id, window start) order regardless.
  for (int64_t household : {3, 1, 2}) {
    for (int64_t h = 0; h < 3; ++h) {
      ASSERT_TRUE(processor.Process(Reading(h, 1.0, 10.0, household)).ok());
    }
  }
  processor.FlushWindows();

  ASSERT_EQ(windows.size(), 6u);  // 3 households x windows [0,2) and [2,4)
  for (size_t i = 0; i < windows.size(); ++i) {
    EXPECT_EQ(windows[i].household_id, static_cast<int64_t>(i / 2 + 1));
    EXPECT_EQ(windows[i].window_start_hour, i % 2 == 0 ? 0 : 2);
  }
}

// ---------------------------------------------------------------------------
// AlertLog
// ---------------------------------------------------------------------------

Alert MakeAlert(int64_t household, int64_t hour) {
  Alert alert;
  alert.household_id = household;
  alert.hour = hour;
  alert.kind = AlertKind::kSpike;
  alert.observed = 2.0;
  alert.expected = 1.0;
  alert.score = 5.0;
  return alert;
}

TEST(AlertLogTest, RingEvictsOldestBeyondCapacity) {
  AlertLog log(3);
  for (int64_t h = 0; h < 5; ++h) {
    log.Record(MakeAlert(1, h));
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.total_recorded(), 5);
  const std::vector<Alert> all = log.Query(AlertQuery{});
  ASSERT_EQ(all.size(), 3u);
  // Oldest-first, and the two oldest alerts fell off the ring.
  EXPECT_EQ(all[0].hour, 2);
  EXPECT_EQ(all[2].hour, 4);
}

TEST(AlertLogTest, QueryFiltersAndLimits) {
  AlertLog log;
  for (int64_t h = 0; h < 10; ++h) {
    log.Record(MakeAlert(h % 2 == 0 ? 7 : 8, h));
  }

  AlertQuery by_household;
  by_household.household_id = 7;
  const std::vector<Alert> sevens = log.Query(by_household);
  ASSERT_EQ(sevens.size(), 5u);
  for (const Alert& alert : sevens) {
    EXPECT_EQ(alert.household_id, 7);
  }

  AlertQuery since;
  since.since_hour = 6;
  EXPECT_EQ(log.Query(since).size(), 4u);  // hours 6..9

  // The limit keeps the NEWEST matches (a dashboard tails the log).
  AlertQuery newest;
  newest.household_id = 8;
  newest.limit = 2;
  const std::vector<Alert> tail = log.Query(newest);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].hour, 7);
  EXPECT_EQ(tail[1].hour, 9);
}

TEST(AlertTest, ToStringMentionsKindAndHousehold) {
  Alert alert;
  alert.household_id = 42;
  alert.hour = 7;
  alert.kind = AlertKind::kSpike;
  alert.observed = 3.0;
  alert.expected = 1.0;
  alert.score = 2.5;
  const std::string text = alert.ToString();
  EXPECT_NE(text.find("spike"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
}

}  // namespace
}  // namespace smartmeter::streaming
