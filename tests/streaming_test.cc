#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/par_task.h"
#include "datagen/seed_generator.h"
#include "streaming/detectors.h"
#include "streaming/stream_processor.h"
#include "timeseries/calendar.h"

namespace smartmeter::streaming {
namespace {

StreamReading Reading(int64_t hour, double kwh, double temp = 10.0,
                      int64_t household = 1) {
  return {household, hour, kwh, temp};
}

// ---------------------------------------------------------------------------
// EwmaDetector
// ---------------------------------------------------------------------------

TEST(EwmaDetectorTest, NoAlertsOnSteadyNoise) {
  EwmaDetector detector;
  Rng rng(1);
  for (int h = 0; h < 1000; ++h) {
    const double kwh = 1.0 + rng.Gaussian(0.0, 0.05);
    EXPECT_FALSE(detector.Observe(Reading(h, kwh)).has_value()) << h;
  }
}

TEST(EwmaDetectorTest, FlagsLargeDeviation) {
  EwmaDetector detector;
  Rng rng(2);
  for (int h = 0; h < 200; ++h) {
    (void)detector.Observe(Reading(h, 1.0 + rng.Gaussian(0.0, 0.05)));
  }
  auto alert = detector.Observe(Reading(200, 8.0));
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->kind, AlertKind::kDeviation);
  EXPECT_EQ(alert->household_id, 1);
  EXPECT_EQ(alert->hour, 200);
  EXPECT_GT(alert->score, 4.0);
  EXPECT_NEAR(alert->expected, 1.0, 0.2);
}

TEST(EwmaDetectorTest, NoAlertsDuringWarmup) {
  EwmaDetector::Options options;
  options.warmup_readings = 48;
  EwmaDetector detector(options);
  // Even wild readings are swallowed during warm-up.
  for (int h = 0; h < 48; ++h) {
    EXPECT_FALSE(
        detector.Observe(Reading(h, h % 2 == 0 ? 0.1 : 9.0)).has_value());
  }
}

TEST(EwmaDetectorTest, AnomalyDoesNotPoisonEnvelope) {
  EwmaDetector detector;
  Rng rng(3);
  for (int h = 0; h < 100; ++h) {
    (void)detector.Observe(Reading(h, 1.0 + rng.Gaussian(0.0, 0.05)));
  }
  const double mean_before = detector.mean();
  (void)detector.Observe(Reading(100, 50.0));  // Flagged, not absorbed.
  EXPECT_DOUBLE_EQ(detector.mean(), mean_before);
}

TEST(EwmaDetectorTest, CloneIsFresh) {
  EwmaDetector detector;
  for (int h = 0; h < 100; ++h) {
    (void)detector.Observe(Reading(h, 5.0));
  }
  auto clone = detector.Clone();
  // The clone has no history: a 5.0 reading is mid-warmup, not normal.
  EXPECT_FALSE(clone->Observe(Reading(0, 5.0)).has_value());
  EXPECT_NE(detector.mean(), 0.0);
}

// ---------------------------------------------------------------------------
// SpikeDetector
// ---------------------------------------------------------------------------

TEST(SpikeDetectorTest, FlagsJumpAfterWarmup) {
  SpikeDetector detector;
  for (int h = 0; h < 48; ++h) {
    EXPECT_FALSE(detector.Observe(Reading(h, 0.8)).has_value());
  }
  auto alert = detector.Observe(Reading(48, 7.0));
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->kind, AlertKind::kSpike);
}

TEST(SpikeDetectorTest, GradualRampDoesNotAlert) {
  SpikeDetector detector;
  double kwh = 0.5;
  for (int h = 0; h < 500; ++h) {
    EXPECT_FALSE(detector.Observe(Reading(h, kwh)).has_value()) << h;
    kwh *= 1.01;  // +1% per hour, never a jump.
  }
}

TEST(SpikeDetectorTest, MinJumpSuppressesTinyBases) {
  SpikeDetector detector;  // min_jump = 0.5 kWh.
  for (int h = 0; h < 48; ++h) {
    (void)detector.Observe(Reading(h, 0.01));
  }
  // 0.01 -> 0.3 is 30x but under the absolute floor.
  EXPECT_FALSE(detector.Observe(Reading(48, 0.3)).has_value());
}

// ---------------------------------------------------------------------------
// FlatlineDetector
// ---------------------------------------------------------------------------

TEST(FlatlineDetectorTest, FlagsStuckMeterOnce) {
  FlatlineDetector detector;
  int alerts = 0;
  for (int h = 0; h < 100; ++h) {
    if (detector.Observe(Reading(h, 1.234)).has_value()) ++alerts;
  }
  EXPECT_EQ(alerts, 1);  // One alert per stuck episode.
}

TEST(FlatlineDetectorTest, VaryingReadingsNeverAlert) {
  FlatlineDetector detector;
  Rng rng(5);
  for (int h = 0; h < 500; ++h) {
    EXPECT_FALSE(
        detector.Observe(Reading(h, 1.0 + rng.NextDouble() * 0.01))
            .has_value());
  }
}

TEST(FlatlineDetectorTest, RecoversAfterEpisode) {
  FlatlineDetector detector;
  int alerts = 0;
  for (int h = 0; h < 30; ++h) {
    if (detector.Observe(Reading(h, 2.0)).has_value()) ++alerts;
  }
  // Normal variation resumes, then the meter sticks again.
  for (int h = 30; h < 40; ++h) {
    (void)detector.Observe(Reading(h, 1.0 + 0.1 * h));
  }
  for (int h = 40; h < 80; ++h) {
    if (detector.Observe(Reading(h, 3.0)).has_value()) ++alerts;
  }
  EXPECT_EQ(alerts, 2);
}

// ---------------------------------------------------------------------------
// ProfileDetector
// ---------------------------------------------------------------------------

core::DailyProfileResult FlatProfile(double level, double beta) {
  core::DailyProfileResult profile;
  profile.household_id = 1;
  profile.profile.assign(24, level);
  profile.temperature_beta.assign(24, beta);
  return profile;
}

TEST(ProfileDetectorTest, ExpectedTracksProfileAndTemperature) {
  ProfileDetector detector(FlatProfile(1.0, 0.1));
  EXPECT_DOUBLE_EQ(detector.ExpectedAt(3, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(detector.ExpectedAt(3, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(detector.ExpectedAt(3, -20.0), 0.0);  // Clamped.
}

TEST(ProfileDetectorTest, AlertOnlyOutsideBand) {
  ProfileDetector detector(FlatProfile(1.0, 0.0));
  EXPECT_FALSE(detector.Observe(Reading(0, 1.4)).has_value());
  auto alert = detector.Observe(Reading(1, 3.5));
  ASSERT_TRUE(alert.has_value());
  EXPECT_EQ(alert->kind, AlertKind::kOffProfile);
  EXPECT_DOUBLE_EQ(alert->expected, 1.0);
}

TEST(ProfileDetectorTest, BatchModelDrivesStreamDetection) {
  // End-to-end bridge: fit a PAR model on a synthetic household, then
  // stream the same year; almost nothing should alert, but an injected
  // outage-then-rebound hour must.
  datagen::SeedGeneratorOptions options;
  options.num_households = 1;
  options.seed = 99;
  auto dataset = datagen::GenerateSeedDataset(options);
  ASSERT_TRUE(dataset.ok());
  const auto& consumer = dataset->consumer(0);
  auto model = core::ComputeDailyProfile(
      consumer.consumption, dataset->temperature(), consumer.household_id);
  ASSERT_TRUE(model.ok());

  ProfileDetector::Options detector_options;
  detector_options.relative_tolerance = 3.0;
  detector_options.min_band = 1.5;
  ProfileDetector detector(*model, detector_options);
  int alerts = 0;
  for (int h = 0; h < kHoursPerYear; ++h) {
    double kwh = consumer.consumption[static_cast<size_t>(h)];
    if (h == 5000) kwh += 12.0;  // Injected anomaly.
    StreamReading reading{consumer.household_id, h, kwh,
                          dataset->temperature()[static_cast<size_t>(h)]};
    auto alert = detector.Observe(reading);
    if (alert.has_value()) {
      ++alerts;
      EXPECT_EQ(alert->hour, 5000);
    }
  }
  EXPECT_EQ(alerts, 1);
}

// ---------------------------------------------------------------------------
// StreamProcessor
// ---------------------------------------------------------------------------

TEST(StreamProcessorTest, RoutesPerHousehold) {
  StreamProcessor processor;
  processor.AddDetectorPrototype(std::make_unique<EwmaDetector>());
  std::vector<Alert> alerts;
  processor.SetAlertSink([&alerts](const Alert& a) {
    alerts.push_back(a);
  });
  Rng rng(7);
  // Two interleaved households; household 2 spikes at hour 300.
  for (int h = 0; h < 400; ++h) {
    ASSERT_TRUE(processor
                    .Process(Reading(h, 1.0 + rng.Gaussian(0, 0.03), 10.0,
                                     1))
                    .ok());
    const double kwh2 = (h == 300) ? 9.0 : 2.0 + rng.Gaussian(0, 0.03);
    ASSERT_TRUE(processor.Process(Reading(h, kwh2, 10.0, 2)).ok());
  }
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].household_id, 2);
  EXPECT_EQ(alerts[0].hour, 300);
  EXPECT_EQ(processor.households_seen(), 2u);
  EXPECT_EQ(processor.readings_processed(), 800);
  EXPECT_EQ(processor.alerts_raised(), 1);
}

TEST(StreamProcessorTest, RejectsOutOfOrderReadings) {
  StreamProcessor processor;
  ASSERT_TRUE(processor.Process(Reading(5, 1.0)).ok());
  EXPECT_FALSE(processor.Process(Reading(5, 1.0)).ok());
  EXPECT_FALSE(processor.Process(Reading(4, 1.0)).ok());
  EXPECT_TRUE(processor.Process(Reading(6, 1.0)).ok());
}

TEST(StreamProcessorTest, TumblingWindowsSummarize) {
  StreamProcessor::Options options;
  options.window_hours = 24;
  StreamProcessor processor(options);
  std::vector<WindowSummary> windows;
  processor.SetWindowSink([&windows](const WindowSummary& w) {
    windows.push_back(w);
  });
  for (int h = 0; h < 48; ++h) {
    ASSERT_TRUE(
        processor.Process(Reading(h, h == 30 ? 5.0 : 1.0)).ok());
  }
  processor.FlushWindows();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].window_start_hour, 0);
  EXPECT_DOUBLE_EQ(windows[0].total_kwh, 24.0);
  EXPECT_DOUBLE_EQ(windows[1].peak_kwh, 5.0);
  EXPECT_EQ(windows[1].peak_hour, 6);  // Hour 30 = 6th hour of day 2.
  EXPECT_DOUBLE_EQ(windows[1].total_kwh, 23.0 + 5.0);
}

TEST(StreamProcessorTest, HouseholdSpecificDetectors) {
  StreamProcessor processor;
  processor.AddHouseholdDetector(
      7, std::make_unique<ProfileDetector>(FlatProfile(1.0, 0.0)));
  std::vector<Alert> alerts;
  processor.SetAlertSink([&alerts](const Alert& a) {
    alerts.push_back(a);
  });
  // Household 7 has the detector; household 8 has none.
  ASSERT_TRUE(processor.Process(Reading(0, 9.0, 10.0, 7)).ok());
  ASSERT_TRUE(processor.Process(Reading(0, 9.0, 10.0, 8)).ok());
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].household_id, 7);
}

TEST(StreamProcessorTest, NoSinksIsSafe) {
  StreamProcessor processor;
  processor.AddDetectorPrototype(std::make_unique<SpikeDetector>());
  for (int h = 0; h < 60; ++h) {
    ASSERT_TRUE(
        processor.Process(Reading(h, h == 50 ? 9.0 : 0.5)).ok());
  }
  EXPECT_GE(processor.alerts_raised(), 1);
  processor.FlushWindows();
}

TEST(AlertTest, ToStringMentionsKindAndHousehold) {
  Alert alert;
  alert.household_id = 42;
  alert.hour = 7;
  alert.kind = AlertKind::kSpike;
  alert.observed = 3.0;
  alert.expected = 1.0;
  alert.score = 2.5;
  const std::string text = alert.ToString();
  EXPECT_NE(text.find("spike"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
}

}  // namespace
}  // namespace smartmeter::streaming
