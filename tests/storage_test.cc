#include <algorithm>
#include <filesystem>
#include <map>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/column_store.h"
#include "storage/csv.h"
#include "storage/row_store.h"
#include "timeseries/dataset.h"

namespace smartmeter::storage {
namespace {

namespace fs = std::filesystem;

/// Builds a small deterministic dataset: `n` households over `hours`.
MeterDataset MakeDataset(int n, int hours, uint64_t seed = 1) {
  Rng rng(seed);
  MeterDataset ds;
  std::vector<double> temp(static_cast<size_t>(hours));
  for (double& t : temp) t = rng.Uniform(-15, 30);
  ds.SetTemperature(std::move(temp));
  for (int i = 0; i < n; ++i) {
    ConsumerSeries c;
    c.household_id = 100 + i;
    c.consumption.reserve(static_cast<size_t>(hours));
    for (int h = 0; h < hours; ++h) {
      c.consumption.push_back(rng.Uniform(0.0, 5.0));
    }
    ds.AddConsumer(std::move(c));
  }
  return ds;
}

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("storage_test_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" +
            ::testing::UnitTest::GetInstance()
                ->current_test_info()
                ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

void ExpectDatasetsNear(const MeterDataset& a, const MeterDataset& b,
                        double tolerance) {
  ASSERT_EQ(a.num_consumers(), b.num_consumers());
  ASSERT_EQ(a.hours(), b.hours());
  for (size_t h = 0; h < a.hours(); ++h) {
    // Temperature is serialized with 2 decimals.
    ASSERT_NEAR(a.temperature()[h], b.temperature()[h], 0.006) << h;
  }
  for (size_t i = 0; i < a.num_consumers(); ++i) {
    ASSERT_EQ(a.consumer(i).household_id, b.consumer(i).household_id);
    for (size_t h = 0; h < a.hours(); ++h) {
      ASSERT_NEAR(a.consumer(i).consumption[h], b.consumer(i).consumption[h],
                  tolerance)
          << "household " << i << " hour " << h;
    }
  }
}

// ---------------------------------------------------------------------------
// CSV round trips
// ---------------------------------------------------------------------------

TEST_F(StorageTest, ReadingsCsvRoundTrip) {
  const MeterDataset ds = MakeDataset(5, 48);
  ASSERT_TRUE(WriteReadingsCsv(ds, Path("data.csv")).ok());
  auto loaded = ReadReadingsCsv(Path("data.csv"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectDatasetsNear(ds, *loaded, 1e-3);  // CSV keeps 4 decimals.
}

TEST_F(StorageTest, PartitionedCsvRoundTrip) {
  const MeterDataset ds = MakeDataset(4, 24);
  auto paths = WritePartitionedCsv(ds, Path("parts"));
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ(paths->size(), 4u);
  auto loaded = ReadPartitionedCsv(Path("parts"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectDatasetsNear(ds, *loaded, 1e-3);
}

TEST_F(StorageTest, HouseholdLinesRoundTrip) {
  const MeterDataset ds = MakeDataset(3, 30);
  ASSERT_TRUE(WriteHouseholdLinesCsv(ds, Path("wide.csv")).ok());
  auto loaded = ReadHouseholdLinesCsv(Path("wide.csv"));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectDatasetsNear(ds, *loaded, 1e-3);
}

TEST_F(StorageTest, WholeHouseholdFilesKeepHouseholdsIntact) {
  const MeterDataset ds = MakeDataset(7, 24);
  auto paths = WriteWholeHouseholdFiles(ds, Path("many"), 3);
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ(paths->size(), 3u);
  // Each household's rows live in exactly one file.
  std::map<int64_t, std::set<std::string>> file_of;
  for (const std::string& path : *paths) {
    ReadingCsvReader reader(path);
    ASSERT_TRUE(reader.Open().ok());
    ReadingRow row;
    while (reader.Next(&row)) {
      file_of[row.household_id].insert(path);
    }
    ASSERT_TRUE(reader.status().ok());
  }
  EXPECT_EQ(file_of.size(), 7u);
  for (const auto& [id, files] : file_of) {
    EXPECT_EQ(files.size(), 1u) << "household " << id << " split";
  }
}

TEST_F(StorageTest, WholeHouseholdFilesClampedToHouseholdCount) {
  const MeterDataset ds = MakeDataset(2, 24);
  auto paths = WriteWholeHouseholdFiles(ds, Path("many2"), 10);
  ASSERT_TRUE(paths.ok());
  EXPECT_EQ(paths->size(), 2u);
}

TEST_F(StorageTest, ParseReadingRowValidatesShape) {
  EXPECT_TRUE(ParseReadingRow("1,0,2.5,-3.0").ok());
  EXPECT_FALSE(ParseReadingRow("1,0,2.5").ok());
  EXPECT_FALSE(ParseReadingRow("a,0,2.5,-3.0").ok());
  EXPECT_FALSE(ParseReadingRow("").ok());
}

TEST_F(StorageTest, ReaderSurfacesMalformedRows) {
  {
    FILE* f = fopen(Path("bad.csv").c_str(), "w");
    fputs("1,0,0.5,1.0\nnot,a,row\n", f);
    fclose(f);
  }
  ReadingCsvReader reader(Path("bad.csv"));
  ASSERT_TRUE(reader.Open().ok());
  ReadingRow row;
  EXPECT_TRUE(reader.Next(&row));
  EXPECT_FALSE(reader.Next(&row));
  EXPECT_FALSE(reader.status().ok());
}

TEST_F(StorageTest, MissingFileIsIOError) {
  EXPECT_EQ(ReadReadingsCsv(Path("absent.csv")).status().code(),
            StatusCode::kIOError);
  ReadingCsvReader reader(Path("absent.csv"));
  EXPECT_EQ(reader.Open().code(), StatusCode::kIOError);
}

TEST_F(StorageTest, ReadRejectsRaggedHouseholds) {
  {
    FILE* f = fopen(Path("ragged.csv").c_str(), "w");
    fputs("1,0,0.5,1.0\n1,1,0.6,1.0\n2,0,0.2,1.0\n", f);
    fclose(f);
  }
  EXPECT_FALSE(ReadReadingsCsv(Path("ragged.csv")).ok());
}

// ---------------------------------------------------------------------------
// RowStore
// ---------------------------------------------------------------------------

TEST_F(StorageTest, RowStoreExtractsOrderedSeries) {
  const MeterDataset ds = MakeDataset(3, 24);
  RowStore store;
  // Interleaved load: rows arrive hour-major like a utility feed.
  ASSERT_TRUE(store.LoadFromDataset(ds, /*interleave=*/true).ok());
  EXPECT_EQ(store.num_rows(), 3u * 24u);
  EXPECT_EQ(store.num_households(), 3u);
  for (const ConsumerSeries& c : ds.consumers()) {
    auto extracted = store.HouseholdConsumption(c.household_id);
    ASSERT_TRUE(extracted.ok());
    EXPECT_EQ(*extracted, c.consumption);
    auto temp = store.HouseholdTemperature(c.household_id);
    ASSERT_TRUE(temp.ok());
    EXPECT_EQ(*temp, ds.temperature());
  }
}

TEST_F(StorageTest, RowStoreUnknownHousehold) {
  RowStore store;
  ASSERT_TRUE(store.LoadFromDataset(MakeDataset(1, 4), false).ok());
  EXPECT_EQ(store.HouseholdConsumption(999).status().code(),
            StatusCode::kNotFound);
}

TEST_F(StorageTest, RowStoreLoadFromCsvMatchesDataset) {
  const MeterDataset ds = MakeDataset(3, 24);
  ASSERT_TRUE(WriteReadingsCsv(ds, Path("rows.csv")).ok());
  RowStore store;
  ASSERT_TRUE(store.LoadFromCsv(Path("rows.csv")).ok());
  EXPECT_EQ(store.num_rows(), ds.consumers().size() * ds.hours());
  auto ids = store.HouseholdIds();
  EXPECT_EQ(ids.size(), 3u);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
}

TEST_F(StorageTest, ArrayStoreFindsHouseholds) {
  const MeterDataset ds = MakeDataset(4, 12);
  ArrayStore store;
  ASSERT_TRUE(store.LoadFromDataset(ds).ok());
  EXPECT_EQ(store.num_households(), 4u);
  auto row = store.Find(101);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->consumption, ds.consumer(1).consumption);
  EXPECT_EQ(row->temperature, ds.temperature());
  EXPECT_EQ(store.Find(12345).status().code(), StatusCode::kNotFound);
}

TEST_F(StorageTest, ArrayStoreReadAllRoundTrips) {
  const MeterDataset ds = MakeDataset(6, 24);
  ArrayStore store;
  ASSERT_TRUE(store.LoadFromDataset(ds).ok());
  auto all = store.ReadAll();
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  ASSERT_EQ(all->num_consumers(), 6u);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(all->consumer(i).household_id, ds.consumer(i).household_id);
    EXPECT_EQ(all->consumer(i).consumption, ds.consumer(i).consumption);
  }
  EXPECT_EQ(all->temperature(), ds.temperature());
}

TEST_F(StorageTest, ArrayStoreReadRowOutOfRange) {
  const MeterDataset ds = MakeDataset(2, 12);
  ArrayStore store;
  ASSERT_TRUE(store.LoadFromDataset(ds).ok());
  EXPECT_EQ(store.ReadRow(5).status().code(), StatusCode::kOutOfRange);
}

// ---------------------------------------------------------------------------
// ColumnStore
// ---------------------------------------------------------------------------

TEST_F(StorageTest, ColumnStoreMappedRoundTrip) {
  const MeterDataset ds = MakeDataset(5, 36);
  const std::string path = Path("table.smcol");
  ASSERT_TRUE(ColumnStore::WriteFile(ds, path).ok());
  ColumnStore store;
  ASSERT_TRUE(store.OpenMapped(path).ok());
  EXPECT_TRUE(store.is_mapped());
  ASSERT_EQ(store.num_households(), 5u);
  ASSERT_EQ(store.hours(), 36u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(store.household_id(i), ds.consumer(i).household_id);
    const auto seg = store.consumption(i);
    for (size_t h = 0; h < 36; ++h) {
      EXPECT_DOUBLE_EQ(seg[h], ds.consumer(i).consumption[h]);
    }
  }
  for (size_t h = 0; h < 36; ++h) {
    EXPECT_DOUBLE_EQ(store.temperature()[h], ds.temperature()[h]);
  }
}

TEST_F(StorageTest, ColumnStoreInMemoryMatchesMapped) {
  const MeterDataset ds = MakeDataset(3, 24);
  const std::string path = Path("table2.smcol");
  ASSERT_TRUE(ColumnStore::WriteFile(ds, path).ok());
  ColumnStore mapped, owned;
  ASSERT_TRUE(mapped.OpenMapped(path).ok());
  ASSERT_TRUE(owned.LoadFromDataset(ds).ok());
  EXPECT_FALSE(owned.is_mapped());
  ASSERT_EQ(mapped.num_households(), owned.num_households());
  for (size_t i = 0; i < mapped.num_households(); ++i) {
    const auto a = mapped.consumption(i);
    const auto b = owned.consumption(i);
    for (size_t h = 0; h < mapped.hours(); ++h) {
      EXPECT_DOUBLE_EQ(a[h], b[h]);
    }
  }
}

TEST_F(StorageTest, ColumnStoreRejectsCorruptFile) {
  {
    FILE* f = fopen(Path("junk.smcol").c_str(), "w");
    fputs("this is not a column store", f);
    fclose(f);
  }
  ColumnStore store;
  EXPECT_EQ(store.OpenMapped(Path("junk.smcol")).code(),
            StatusCode::kCorruption);
}

TEST_F(StorageTest, ColumnStoreRejectsTruncatedFile) {
  const MeterDataset ds = MakeDataset(2, 24);
  const std::string path = Path("trunc.smcol");
  ASSERT_TRUE(ColumnStore::WriteFile(ds, path).ok());
  fs::resize_file(path, fs::file_size(path) - 16);
  ColumnStore store;
  EXPECT_EQ(store.OpenMapped(path).code(), StatusCode::kCorruption);
}

TEST_F(StorageTest, ColumnStoreMoveKeepsMapping) {
  const MeterDataset ds = MakeDataset(2, 24);
  const std::string path = Path("move.smcol");
  ASSERT_TRUE(ColumnStore::WriteFile(ds, path).ok());
  ColumnStore a;
  ASSERT_TRUE(a.OpenMapped(path).ok());
  ColumnStore b = std::move(a);
  EXPECT_EQ(b.num_households(), 2u);
  EXPECT_DOUBLE_EQ(b.consumption(0)[0], ds.consumer(0).consumption[0]);
}

}  // namespace
}  // namespace smartmeter::storage
