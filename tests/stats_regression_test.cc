#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "stats/kmeans.h"
#include "stats/matrix.h"
#include "stats/ols.h"

namespace smartmeter::stats {
namespace {

// ---------------------------------------------------------------------------
// Matrix / Cholesky / LeastSquares
// ---------------------------------------------------------------------------

TEST(MatrixTest, GramMatchesExplicitTranspose) {
  Rng rng(3);
  Matrix x(20, 4);
  for (size_t r = 0; r < x.rows(); ++r) {
    for (size_t c = 0; c < x.cols(); ++c) {
      x.At(r, c) = rng.Gaussian(0, 1);
    }
  }
  Matrix gram = x.Gram();
  Matrix expected = x.Transposed().Multiply(x);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(gram.At(i, j), expected.At(i, j), 1e-9);
    }
  }
}

TEST(MatrixTest, TransposeTimesMatchesManual) {
  Matrix x(3, 2);
  // [[1,2],[3,4],[5,6]]
  x.At(0, 0) = 1; x.At(0, 1) = 2;
  x.At(1, 0) = 3; x.At(1, 1) = 4;
  x.At(2, 0) = 5; x.At(2, 1) = 6;
  const std::vector<double> v = {1.0, 1.0, 1.0};
  const std::vector<double> out = x.TransposeTimes(v);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 9.0);
  EXPECT_DOUBLE_EQ(out[1], 12.0);
}

TEST(CholeskyTest, SolvesKnownSystem) {
  Matrix a(2, 2);
  a.At(0, 0) = 4; a.At(0, 1) = 2;
  a.At(1, 0) = 2; a.At(1, 1) = 3;
  const std::vector<double> b = {10.0, 8.0};
  auto x = CholeskySolve(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.75, 1e-12);
  EXPECT_NEAR((*x)[1], 1.5, 1e-12);
}

TEST(CholeskyTest, RejectsNonPositiveDefinite) {
  Matrix a(2, 2);
  a.At(0, 0) = 1; a.At(0, 1) = 2;
  a.At(1, 0) = 2; a.At(1, 1) = 1;  // Eigenvalues 3 and -1.
  EXPECT_FALSE(CholeskySolve(a, {1.0, 1.0}).ok());
}

TEST(CholeskyTest, RejectsShapeMismatch) {
  Matrix a(2, 3);
  EXPECT_FALSE(CholeskySolve(a, {1.0, 1.0}).ok());
}

TEST(LeastSquaresTest, RecoversExactCoefficients) {
  Rng rng(11);
  const std::vector<double> truth = {2.0, -1.5, 0.25};
  Matrix x(200, 3);
  std::vector<double> y(200);
  for (size_t r = 0; r < 200; ++r) {
    x.At(r, 0) = 1.0;
    x.At(r, 1) = rng.Gaussian(0, 3);
    x.At(r, 2) = rng.Gaussian(5, 2);
    y[r] = truth[0] * x.At(r, 0) + truth[1] * x.At(r, 1) +
           truth[2] * x.At(r, 2);
  }
  auto beta = LeastSquares(x, y);
  ASSERT_TRUE(beta.ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR((*beta)[i], truth[i], 1e-8);
  }
}

TEST(LeastSquaresTest, NoisyRecoveryWithinTolerance) {
  Rng rng(13);
  Matrix x(2000, 2);
  std::vector<double> y(2000);
  for (size_t r = 0; r < 2000; ++r) {
    x.At(r, 0) = 1.0;
    x.At(r, 1) = rng.Uniform(-10, 10);
    y[r] = 3.0 + 0.5 * x.At(r, 1) + rng.Gaussian(0, 0.2);
  }
  auto beta = LeastSquares(x, y);
  ASSERT_TRUE(beta.ok());
  EXPECT_NEAR((*beta)[0], 3.0, 0.05);
  EXPECT_NEAR((*beta)[1], 0.5, 0.01);
}

TEST(LeastSquaresTest, CollinearColumnsFallBackToRidge) {
  // Second column duplicates the first: singular normal equations.
  Matrix x(10, 2);
  std::vector<double> y(10);
  for (size_t r = 0; r < 10; ++r) {
    x.At(r, 0) = static_cast<double>(r);
    x.At(r, 1) = static_cast<double>(r);
    y[r] = 2.0 * static_cast<double>(r);
  }
  auto beta = LeastSquares(x, y);
  ASSERT_TRUE(beta.ok());
  // Ridge splits the weight; predictions must still be right.
  EXPECT_NEAR((*beta)[0] + (*beta)[1], 2.0, 1e-3);
}

TEST(LeastSquaresTest, RejectsUnderdeterminedSystem) {
  Matrix x(2, 3);
  EXPECT_FALSE(LeastSquares(x, {1.0, 2.0}).ok());
}

// ---------------------------------------------------------------------------
// Simple line fits
// ---------------------------------------------------------------------------

TEST(FitLineTest, ExactLine) {
  const std::vector<double> x = {0, 1, 2, 3};
  const std::vector<double> y = {1, 3, 5, 7};
  auto fit = FitLine(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 2.0, 1e-12);
  EXPECT_NEAR(fit->intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit->Predict(10.0), 21.0, 1e-12);
}

TEST(FitLineTest, ConstantXDegeneratesToMean) {
  const std::vector<double> x = {2, 2, 2};
  const std::vector<double> y = {1, 2, 3};
  auto fit = FitLine(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_DOUBLE_EQ(fit->slope, 0.0);
  EXPECT_DOUBLE_EQ(fit->intercept, 2.0);
}

TEST(FitLineTest, ConstantYHasPerfectR2) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {4, 4, 4};
  auto fit = FitLine(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_DOUBLE_EQ(fit->slope, 0.0);
  EXPECT_DOUBLE_EQ(fit->r_squared, 1.0);
}

TEST(FitLineTest, RejectsBadInput) {
  EXPECT_FALSE(FitLine({}, {}).ok());
  const std::vector<double> x = {1.0};
  const std::vector<double> y = {1.0, 2.0};
  EXPECT_FALSE(FitLine(x, y).ok());
}

TEST(FitLineWeightedTest, ZeroWeightIgnoresPoints) {
  const std::vector<double> x = {0, 1, 100};
  const std::vector<double> y = {0, 2, -500};
  const std::vector<double> w = {1, 1, 0};
  auto fit = FitLineWeighted(x, y, w);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 2.0, 1e-12);
  EXPECT_NEAR(fit->intercept, 0.0, 1e-12);
}

TEST(FitLineWeightedTest, UniformWeightsMatchUnweighted) {
  Rng rng(19);
  std::vector<double> x(50), y(50), w(50, 2.5);
  for (size_t i = 0; i < 50; ++i) {
    x[i] = rng.Uniform(-5, 5);
    y[i] = 1.0 - 0.7 * x[i] + rng.Gaussian(0, 0.1);
  }
  auto weighted = FitLineWeighted(x, y, w);
  auto plain = FitLine(x, y);
  ASSERT_TRUE(weighted.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_NEAR(weighted->slope, plain->slope, 1e-10);
  EXPECT_NEAR(weighted->intercept, plain->intercept, 1e-10);
}

TEST(FitLineWeightedTest, RejectsNegativeWeight) {
  const std::vector<double> x = {1, 2};
  const std::vector<double> y = {1, 2};
  const std::vector<double> w = {1, -1};
  EXPECT_FALSE(FitLineWeighted(x, y, w).ok());
}

// ---------------------------------------------------------------------------
// KMeans
// ---------------------------------------------------------------------------

std::vector<std::vector<double>> ThreeBlobs(int per_cluster, Rng* rng) {
  const double centers[3][2] = {{0, 0}, {10, 10}, {-10, 10}};
  std::vector<std::vector<double>> points;
  for (const auto& center : centers) {
    for (int i = 0; i < per_cluster; ++i) {
      points.push_back({center[0] + rng->Gaussian(0, 0.5),
                        center[1] + rng->Gaussian(0, 0.5)});
    }
  }
  return points;
}

TEST(KMeansTest, RecoversSeparatedClusters) {
  Rng rng(29);
  auto points = ThreeBlobs(50, &rng);
  auto result = KMeans(points, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->converged);
  // Every cluster is pure: points 0..49 share a label, etc.
  for (int c = 0; c < 3; ++c) {
    const int label = result->assignment[static_cast<size_t>(c) * 50];
    for (int i = 0; i < 50; ++i) {
      EXPECT_EQ(result->assignment[static_cast<size_t>(c) * 50 +
                                   static_cast<size_t>(i)],
                label);
    }
  }
  // Inertia is tiny relative to the blob separation.
  EXPECT_LT(result->inertia / static_cast<double>(points.size()), 1.0);
}

TEST(KMeansTest, DeterministicForSeed) {
  Rng rng(31);
  auto points = ThreeBlobs(20, &rng);
  KMeansOptions options;
  options.seed = 5;
  auto a = KMeans(points, 3, options);
  auto b = KMeans(points, 3, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->assignment, b->assignment);
  EXPECT_DOUBLE_EQ(a->inertia, b->inertia);
}

TEST(KMeansTest, KGreaterThanPointsIsClamped) {
  const std::vector<std::vector<double>> points = {{0.0}, {1.0}};
  auto result = KMeans(points, 10);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->centroids.size(), 2u);
}

TEST(KMeansTest, SingleClusterCentroidIsMean) {
  const std::vector<std::vector<double>> points = {{0.0, 0.0},
                                                   {2.0, 4.0},
                                                   {4.0, 2.0}};
  auto result = KMeans(points, 1);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->centroids.size(), 1u);
  EXPECT_NEAR(result->centroids[0][0], 2.0, 1e-12);
  EXPECT_NEAR(result->centroids[0][1], 2.0, 1e-12);
}

TEST(KMeansTest, RejectsBadInput) {
  EXPECT_FALSE(KMeans({}, 2).ok());
  EXPECT_FALSE(KMeans({{1.0}}, 0).ok());
  EXPECT_FALSE(KMeans({{1.0}, {1.0, 2.0}}, 1).ok());
}

TEST(KMeansTest, IdenticalPointsConverge) {
  const std::vector<std::vector<double>> points(5, std::vector<double>{3.0});
  auto result = KMeans(points, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->inertia, 0.0, 1e-12);
}

}  // namespace
}  // namespace smartmeter::stats
