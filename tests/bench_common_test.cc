#include <filesystem>

#include <gtest/gtest.h>

#include "bench_common.h"
#include "storage/csv.h"

namespace smartmeter::bench {
namespace {

namespace fs = std::filesystem;

class BenchCommonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    workdir_ = (fs::path(::testing::TempDir()) /
                ("bench_common_" +
                 std::string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name())))
                   .string();
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(workdir_, ec);
  }

  BenchContext MakeContext(double scale = 40.0) {
    workdir_flag_ = "--workdir=" + workdir_;
    hours_flag_ = "--hours=720";  // 30 days keeps tests quick.
    argv_ = {const_cast<char*>("bench"),
             const_cast<char*>(workdir_flag_.c_str()),
             const_cast<char*>(hours_flag_.c_str())};
    return BenchContext(static_cast<int>(argv_.size()), argv_.data(),
                        scale);
  }

  std::string workdir_;
  std::string workdir_flag_, hours_flag_;
  std::vector<char*> argv_;
};

TEST_F(BenchCommonTest, PaperSizeMappingRoundTrips) {
  BenchContext ctx = MakeContext(40.0);
  // 10 paper-GB at divisor 40: 10 * 2730 / 40 ~= 682 households.
  const int households = ctx.HouseholdsForPaperGb(10.0);
  EXPECT_NEAR(households, 683, 2);
  EXPECT_NEAR(ctx.PaperGbForHouseholds(households), 10.0, 0.05);
  // Tiny sizes still yield a usable population.
  EXPECT_GE(ctx.HouseholdsForPaperGb(0.001), 4);
}

TEST_F(BenchCommonTest, DatasetCachingReturnsConsistentSubsets) {
  BenchContext ctx = MakeContext();
  auto big = ctx.GetDataset(12);
  ASSERT_TRUE(big.ok());
  const std::vector<double> first = (*big)->consumer(0).consumption;
  auto small = ctx.GetDataset(5);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ((*small)->num_consumers(), 5u);
  // Subsets are prefixes of the cached population.
  EXPECT_EQ((*small)->consumer(0).consumption, first);
}

TEST_F(BenchCommonTest, MaterializationIsIdempotent) {
  BenchContext ctx = MakeContext();
  auto first = ctx.SingleCsv(6);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->files.size(), 1u);
  const auto mtime = fs::last_write_time(first->files[0]);
  // Second call must reuse the marker, not rewrite the file.
  auto second = ctx.SingleCsv(6);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->files, first->files);
  EXPECT_EQ(fs::last_write_time(first->files[0]), mtime);
}

TEST_F(BenchCommonTest, LayoutsAreReadable) {
  BenchContext ctx = MakeContext();
  auto single = ctx.SingleCsv(4);
  auto part = ctx.PartitionedDir(4);
  auto lines = ctx.HouseholdLines(4);
  auto whole = ctx.WholeFileDir(4, 2);
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(part.ok());
  ASSERT_TRUE(lines.ok());
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(part->files.size(), 4u);
  EXPECT_EQ(whole->files.size(), 2u);
  auto ds = storage::ReadReadingsCsv(single->files[0]);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_consumers(), 4u);
  EXPECT_EQ(ds->hours(), 720u);
  auto wide = storage::ReadHouseholdLinesCsv(lines->files[0]);
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(wide->num_consumers(), 4u);
}

}  // namespace
}  // namespace smartmeter::bench
