// Exercises the concurrent execution subsystem: the work-stealing
// thread pool under steal-heavy load, ParallelFor edge cases, and
// QueryContext cancellation/deadline propagation into all four task
// kernels.
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/histogram_task.h"
#include "core/par_task.h"
#include "core/similarity_task.h"
#include "core/three_line_task.h"
#include "exec/query_context.h"
#include "obs/metrics.h"

namespace smartmeter {
namespace {

/// Keeps busy-work loops from being optimized away.
std::atomic<double> benchmark_sink{0.0};

// ---------------------------------------------------------------------------
// Work-stealing pool
// ---------------------------------------------------------------------------

TEST(WorkStealingTest, StressTenThousandTasksAcrossEightWorkers) {
  ThreadPool pool(8);
  std::atomic<int> executed{0};
  // Steal-heavy shape: a few seed tasks each spawn a burst of children
  // from inside the pool, so children land on one worker's deque and
  // the other seven make progress only by stealing.
  constexpr int kSeeds = 10;
  constexpr int kChildrenPerSeed = 999;  // 10 * (1 + 999) = 10,000 tasks.
  for (int s = 0; s < kSeeds; ++s) {
    pool.Submit([&pool, &executed] {
      for (int c = 0; c < kChildrenPerSeed; ++c) {
        pool.Submit([&executed] {
          executed.fetch_add(1, std::memory_order_relaxed);
        });
      }
      executed.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.Wait();
  EXPECT_EQ(executed.load(), kSeeds * (1 + kChildrenPerSeed));
}

TEST(WorkStealingTest, StealsObservedUnderImbalance) {
  obs::Counter* stolen =
      obs::MetricsRegistry::Global().GetCounter("threadpool.tasks_stolen");
  const int64_t before = stolen->Value();
  ThreadPool pool(8);
  std::atomic<int> executed{0};
  // One seed spawning slow children from a single worker's deque forces
  // the other workers to steal or idle. Under machine load the idle
  // workers may not be scheduled before the seed worker drains its own
  // deque, so repeat the imbalanced round until a steal is observed.
  int rounds = 0;
  for (; rounds < 50 && stolen->Value() == before; ++rounds) {
    const int base = executed.load();
    pool.Submit([&pool, &executed] {
      for (int c = 0; c < 64; ++c) {
        pool.Submit([&executed] {
          double sink = 0.0;
          for (int i = 0; i < 20000; ++i) sink += std::sqrt(i);
          benchmark_sink.store(sink, std::memory_order_relaxed);
          executed.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
    pool.Wait();
    ASSERT_EQ(executed.load(), base + 64);
  }
  EXPECT_GT(stolen->Value(), before) << "no steal in " << rounds << " rounds";
}

TEST(WorkStealingTest, ParallelForZeroCountEnqueuesNothing) {
  obs::Counter* submitted = obs::MetricsRegistry::Global().GetCounter(
      "threadpool.tasks_submitted");
  ThreadPool pool(4);
  const int64_t before = submitted->Value();
  bool called = false;
  pool.ParallelFor(0, [&called](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
  EXPECT_EQ(submitted->Value(), before);
  pool.Wait();  // Returns immediately: nothing was enqueued.
}

TEST(WorkStealingTest, SubmitFromWorkerThenWaitDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> inner_done{0};
  std::atomic<bool> outer_done{false};
  // The outer task occupies one worker, Submits more work than the
  // remaining worker can have started, then Waits: the waiting worker
  // must help run queued tasks instead of blocking the pool.
  pool.Submit([&] {
    for (int i = 0; i < 100; ++i) {
      pool.Submit(
          [&inner_done] { inner_done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Wait();
    EXPECT_EQ(inner_done.load(), 100);
    outer_done.store(true);
  });
  pool.Wait();
  EXPECT_TRUE(outer_done.load());
}

TEST(WorkStealingTest, NestedParallelForFromWorker) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.ParallelFor(8, [&pool, &total](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      pool.ParallelFor(50, [&total](size_t b, size_t e) {
        total.fetch_add(static_cast<int>(e - b), std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(total.load(), 8 * 50);
}

TEST(WorkStealingTest, ConcurrentExternalParallelFors) {
  ThreadPool pool(4);
  std::atomic<int> a{0}, b{0};
  std::thread t1([&] {
    pool.ParallelFor(500, [&a](size_t begin, size_t end) {
      a.fetch_add(static_cast<int>(end - begin), std::memory_order_relaxed);
    });
  });
  std::thread t2([&] {
    pool.ParallelFor(700, [&b](size_t begin, size_t end) {
      b.fetch_add(static_cast<int>(end - begin), std::memory_order_relaxed);
    });
  });
  t1.join();
  t2.join();
  EXPECT_EQ(a.load(), 500);
  EXPECT_EQ(b.load(), 700);
}

// ---------------------------------------------------------------------------
// QueryContext semantics
// ---------------------------------------------------------------------------

TEST(QueryContextTest, BackgroundNeverStops) {
  const exec::QueryContext& ctx = exec::QueryContext::Background();
  EXPECT_FALSE(ctx.ShouldStop());
  EXPECT_TRUE(ctx.CheckNotStopped().ok());
}

TEST(QueryContextTest, CancelTripsSharedToken) {
  exec::QueryContext ctx;
  EXPECT_FALSE(ctx.ShouldStop());
  ctx.RequestCancel();
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.CheckNotStopped().code(), StatusCode::kCancelled);
}

TEST(QueryContextTest, ExpiredDeadlineReportsDeadlineExceeded) {
  exec::QueryContext ctx;
  ctx.set_deadline(exec::QueryContext::Clock::now() -
                   std::chrono::milliseconds(1));
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.CheckNotStopped().code(), StatusCode::kDeadlineExceeded);
  // The deadline also trips the shared token for other observers.
  EXPECT_TRUE(ctx.cancelled());
}

TEST(QueryContextTest, FutureDeadlineDoesNotStop) {
  exec::QueryContext ctx;
  ctx.set_deadline_after(std::chrono::hours(1));
  EXPECT_FALSE(ctx.ShouldStop());
  EXPECT_TRUE(ctx.CheckNotStopped().ok());
}

// ---------------------------------------------------------------------------
// Kernel cancellation: all four kernels bail out under a stopped context
// ---------------------------------------------------------------------------

class KernelCancellationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A year of synthetic data with daily and seasonal structure.
    consumption_.reserve(8760);
    temperature_.reserve(8760);
    for (int t = 0; t < 8760; ++t) {
      temperature_.push_back(10.0 + 15.0 * std::sin(t * 0.0007));
      consumption_.push_back(
          0.5 + 0.1 * ((t % 24) / 24.0) +
          0.02 * std::max(0.0, 12.0 - temperature_.back()));
    }
  }

  static void Cancel(exec::QueryContext* ctx) { ctx->RequestCancel(); }

  static void Expire(exec::QueryContext* ctx) {
    ctx->set_deadline(exec::QueryContext::Clock::now() -
                      std::chrono::milliseconds(1));
  }

  std::vector<double> consumption_;
  std::vector<double> temperature_;
};

TEST_F(KernelCancellationTest, HistogramKernel) {
  exec::QueryContext cancelled;
  Cancel(&cancelled);
  EXPECT_EQ(core::ComputeConsumptionHistogram(consumption_, {}, &cancelled)
                .status()
                .code(),
            StatusCode::kCancelled);
  exec::QueryContext expired;
  Expire(&expired);
  EXPECT_EQ(core::ComputeConsumptionHistogram(consumption_, {}, &expired)
                .status()
                .code(),
            StatusCode::kDeadlineExceeded);
}

TEST_F(KernelCancellationTest, ThreeLineKernel) {
  exec::QueryContext cancelled;
  Cancel(&cancelled);
  EXPECT_EQ(core::ComputeThreeLine(consumption_, temperature_, 1, {},
                                   nullptr, &cancelled)
                .status()
                .code(),
            StatusCode::kCancelled);
  exec::QueryContext expired;
  Expire(&expired);
  EXPECT_EQ(core::ComputeThreeLine(consumption_, temperature_, 1, {},
                                   nullptr, &expired)
                .status()
                .code(),
            StatusCode::kDeadlineExceeded);
}

TEST_F(KernelCancellationTest, ParKernel) {
  exec::QueryContext cancelled;
  Cancel(&cancelled);
  EXPECT_EQ(core::ComputeDailyProfile(consumption_, temperature_, 1, {},
                                      &cancelled)
                .status()
                .code(),
            StatusCode::kCancelled);
  exec::QueryContext expired;
  Expire(&expired);
  EXPECT_EQ(core::ComputeDailyProfile(consumption_, temperature_, 1, {},
                                      &expired)
                .status()
                .code(),
            StatusCode::kDeadlineExceeded);
}

TEST_F(KernelCancellationTest, SimilarityKernel) {
  std::vector<std::vector<double>> data(8);
  std::vector<core::SeriesView> series;
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = consumption_;
    data[i][0] += static_cast<double>(i);  // Distinct series.
    series.push_back(
        {static_cast<int64_t>(i + 1), std::span<const double>(data[i])});
  }
  exec::QueryContext cancelled;
  Cancel(&cancelled);
  EXPECT_EQ(core::ComputeSimilarityTopK(series, {}, &cancelled)
                .status()
                .code(),
            StatusCode::kCancelled);
  exec::QueryContext expired;
  Expire(&expired);
  EXPECT_EQ(
      core::ComputeSimilarityTopK(series, {}, &expired).status().code(),
      StatusCode::kDeadlineExceeded);
}

TEST_F(KernelCancellationTest, MidFlightDeadlineStopsLongSimilarity) {
  // A deadline that expires while the quadratic scan runs: the kernel
  // must notice it between query rows and stop early.
  constexpr size_t kSeries = 64;
  std::vector<std::vector<double>> data(kSeries);
  std::vector<core::SeriesView> series;
  for (size_t i = 0; i < kSeries; ++i) {
    data[i] = consumption_;
    data[i][i % data[i].size()] += static_cast<double>(i);
    series.push_back(
        {static_cast<int64_t>(i + 1), std::span<const double>(data[i])});
  }
  exec::QueryContext ctx;
  ctx.set_deadline_after(std::chrono::microseconds(200));
  auto result = core::ComputeSimilarityTopK(series, {}, &ctx);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace smartmeter
