// Corruption-robustness fuzz for the column-file readers: every byte of
// a valid SMCOLV2 file is bit-flipped, the file is truncated at every
// length, and a hostile hand-written corpus (tests/column_corpus/) is
// replayed. The invariant under test is that Open/DecodeAll/DecodeScoped
// always return a clean Status — no crash, no overread (ASan-visible),
// no silently wrong acceptance of a file whose checksums cannot match.
//
// Environment knobs (all optional):
//   SM_COLUMN_FUZZ_STEP  byte stride of the bit-flip/truncation sweeps
//                        (default 1 = exhaustive; CI can raise it)
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/seed_generator.h"
#include "storage/block_codec.h"
#include "storage/column_store.h"
#include "storage/scan_scope.h"

namespace smartmeter::storage {
namespace {

namespace fs = std::filesystem;

constexpr size_t kV2HeaderBytes = 48;
constexpr size_t kV2EntryBytes = 72;
constexpr size_t kV2FooterCounts = 24;

size_t SweepStep() {
  const char* value = std::getenv("SM_COLUMN_FUZZ_STEP");
  if (value == nullptr || *value == '\0') return 1;
  const long parsed = std::strtol(value, nullptr, 10);
  return parsed >= 1 ? static_cast<size_t>(parsed) : 1;
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

uint64_t GetU64(const std::vector<uint8_t>& bytes, size_t offset) {
  uint64_t value = 0;
  std::memcpy(&value, bytes.data() + offset, sizeof(value));
  return value;
}

void PutU64(std::vector<uint8_t>* bytes, size_t offset, uint64_t value) {
  std::memcpy(bytes->data() + offset, &value, sizeof(value));
}

/// Rewrites the footer and header checksums so a targeted mutation of an
/// index entry survives the outer integrity checks and reaches the deep
/// per-block validation.
void ResealChecksums(std::vector<uint8_t>* bytes) {
  const uint64_t footer_offset = GetU64(*bytes, 32);
  ASSERT_LT(footer_offset, bytes->size());
  const size_t footer_body = bytes->size() - footer_offset - 8;
  PutU64(bytes, footer_offset + footer_body,
         codec::Fnv1a({bytes->data() + footer_offset, footer_body},
                      codec::Fnv1aSeed()));
  PutU64(bytes, 40, codec::Fnv1a({bytes->data(), 40}, codec::Fnv1aSeed()));
}

/// Opens and fully exercises one (possibly corrupt) column file. Every
/// call must come back with a Status — crashing, hanging, or tripping
/// ASan is the failure mode being hunted. Returns true when the whole
/// pipeline succeeded (file behaved as valid).
bool ExerciseFile(const std::string& path) {
  const Result<int> format = SniffColumnFileFormat(path);
  if (!format.ok()) return false;

  if (*format == 1) {
    ColumnStore store;
    if (!store.OpenMapped(path).ok()) return false;
    // Touch the mapped columns the way a scan would; the volatile sink
    // keeps the reads (the potential overread) from being optimized out.
    double sum = 0.0;
    for (double v : store.consumption_column()) sum += v;
    for (double v : store.temperature()) sum += v;
    volatile double sink = sum;
    (void)sink;
    return true;
  }

  CompressedColumnFile file;
  if (!file.Open(path).ok()) return false;
  std::vector<int64_t> ids;
  std::vector<double> consumption;
  std::vector<double> temperature;
  ScanStats stats;
  bool all_ok = file.DecodeAll(&ids, &consumption, &temperature, &stats).ok();

  ScanScope scoped_rows;
  scoped_rows.row_begin = file.num_households() / 2;
  scoped_rows.row_count = 1;
  ScanScope scoped_hours;
  scoped_hours.hour_begin = file.hours() / 2;
  scoped_hours.hour_count = file.hours() / 4 + 1;
  for (const ScanScope& scope : {scoped_rows, scoped_hours}) {
    ids.clear();
    consumption.clear();
    temperature.clear();
    ScanStats scoped_stats;
    all_ok = file.DecodeScoped(scope, &ids, &consumption, &temperature,
                               &scoped_stats)
                 .ok() &&
             all_ok;
  }
  for (size_t i = 0; i < file.num_consumption_blocks(); ++i) {
    std::vector<double> block_values;
    all_ok = file.DecodeConsumptionBlock(i, &block_values).ok() && all_ok;
  }
  return all_ok;
}

class ColumnStoreFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) / "column_fuzz";
    fs::remove_all(dir_);
    fs::create_directories(dir_);

    datagen::SeedGeneratorOptions options;
    options.num_households = 5;
    options.hours = 48;
    options.seed = 77;
    auto dataset = datagen::GenerateSeedDataset(options);
    ASSERT_TRUE(dataset.ok());
    valid_path_ = (dir_ / "valid.smcol").string();
    // Small blocks so the sweep visits many block headers and payloads.
    ASSERT_TRUE(ColumnFileWriter::WriteFile(*dataset, valid_path_,
                                            /*block_values=*/32)
                    .ok());
    valid_bytes_ = ReadFileBytes(valid_path_);
    ASSERT_GT(valid_bytes_.size(), kV2HeaderBytes);
    ASSERT_TRUE(ExerciseFile(valid_path_));
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  fs::path dir_;
  std::string valid_path_;
  std::vector<uint8_t> valid_bytes_;
};

TEST_F(ColumnStoreFuzzTest, BitFlipSweepNeverCrashes) {
  const std::string mutated_path = (dir_ / "mutated.smcol").string();
  const size_t step = SweepStep();
  size_t accepted = 0;
  for (size_t offset = 0; offset < valid_bytes_.size(); offset += step) {
    for (uint8_t mask : {uint8_t{0x01}, uint8_t{0x80}}) {
      std::vector<uint8_t> mutated = valid_bytes_;
      mutated[offset] ^= mask;
      WriteFileBytes(mutated_path, mutated);
      SCOPED_TRACE(testing::Message()
                   << "bit flip at byte " << offset << " mask " << int{mask});
      if (ExerciseFile(mutated_path)) ++accepted;
    }
  }
  // Every section is covered by a checksum, so only flips the reseal-less
  // sweep cannot detect (none) may decode fully; a tiny tolerance is left
  // for FNV collisions, which at this file size do not occur.
  EXPECT_EQ(accepted, 0u);
}

TEST_F(ColumnStoreFuzzTest, TruncationSweepNeverCrashes) {
  const std::string truncated_path = (dir_ / "truncated.smcol").string();
  const size_t step = SweepStep();
  for (size_t length = 0; length < valid_bytes_.size(); length += step) {
    std::vector<uint8_t> truncated(valid_bytes_.begin(),
                                   valid_bytes_.begin() + length);
    WriteFileBytes(truncated_path, truncated);
    SCOPED_TRACE(testing::Message() << "truncated to " << length << " bytes");
    // The header's footer offset can no longer match the file size, so
    // every strict truncation must be rejected outright.
    EXPECT_FALSE(ExerciseFile(truncated_path));
  }
}

TEST_F(ColumnStoreFuzzTest, ResealedIndexMutationsAreRejectedCleanly) {
  // These mutations patch one index entry and then RESEAL the footer and
  // header checksums, so the reader cannot lean on the outer integrity
  // check — the per-entry and per-block validation has to catch them.
  const uint64_t footer_offset = GetU64(valid_bytes_, 32);
  const size_t first_entry = footer_offset + kV2FooterCounts;
  ASSERT_LE(first_entry + kV2EntryBytes, valid_bytes_.size());

  struct Mutation {
    const char* label;
    size_t field_offset;  // Within the first index entry.
    uint64_t value;
  };
  const Mutation mutations[] = {
      {"block offset past EOF", 0, valid_bytes_.size() + 4096},
      {"encoded bytes huge", 8, uint64_t{1} << 60},
      {"encoded bytes zero", 8, 0},
      {"row range inverted", 16, uint64_t{1} << 32},
      {"hour range absurd", 32, uint64_t{1} << 40},
      {"payload checksum flipped", 64,
       GetU64(valid_bytes_, first_entry + 64) ^ 1},
  };
  const std::string mutated_path = (dir_ / "resealed.smcol").string();
  for (const Mutation& mutation : mutations) {
    SCOPED_TRACE(mutation.label);
    std::vector<uint8_t> mutated = valid_bytes_;
    PutU64(&mutated, first_entry + mutation.field_offset, mutation.value);
    ResealChecksums(&mutated);
    WriteFileBytes(mutated_path, mutated);
    EXPECT_FALSE(ExerciseFile(mutated_path));
  }

  // Deepest path: corrupt a block PAYLOAD header byte (bit width field),
  // then reseal the entry checksum over the corrupt payload so decode is
  // reached with a checksum-clean but invalid block.
  {
    SCOPED_TRACE("bit width out of range, checksums resealed");
    std::vector<uint8_t> mutated = valid_bytes_;
    const uint64_t block_offset = GetU64(mutated, first_entry);
    const uint64_t block_bytes = GetU64(mutated, first_entry + 8);
    ASSERT_LE(block_offset + block_bytes, mutated.size());
    mutated[block_offset + 2] = 0xFF;  // bit_width byte of the block header.
    PutU64(&mutated, first_entry + 64,
           codec::Fnv1a({mutated.data() + block_offset,
                         static_cast<size_t>(block_bytes)},
                        codec::Fnv1aSeed()));
    ResealChecksums(&mutated);
    WriteFileBytes((dir_ / "badwidth.smcol").string(), mutated);
    EXPECT_FALSE(ExerciseFile((dir_ / "badwidth.smcol").string()));
  }
}

// ---------------------------------------------------------------------------
// Hostile corpus: hand-written cases under tests/column_corpus/. Each
// file is whitespace-separated hex bytes with '#' comments; every case is
// invalid by construction and must be rejected without crashing.
// ---------------------------------------------------------------------------

std::vector<uint8_t> ParseHexCase(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::vector<uint8_t> bytes;
  std::string line;
  while (std::getline(in, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    int hi = -1;
    for (char c : line) {
      if (std::isspace(static_cast<unsigned char>(c))) continue;
      const int nibble = std::isdigit(static_cast<unsigned char>(c))
                             ? c - '0'
                             : std::tolower(static_cast<unsigned char>(c)) -
                                   'a' + 10;
      EXPECT_GE(nibble, 0) << path << ": bad hex char '" << c << "'";
      EXPECT_LT(nibble, 16) << path << ": bad hex char '" << c << "'";
      if (hi < 0) {
        hi = nibble;
      } else {
        bytes.push_back(static_cast<uint8_t>(hi * 16 + nibble));
        hi = -1;
      }
    }
    EXPECT_EQ(hi, -1) << path << ": odd number of hex digits";
  }
  return bytes;
}

TEST(ColumnCorpusTest, HostileCasesAreRejectedCleanly) {
  const fs::path corpus_dir(SM_COLUMN_CORPUS_DIR);
  ASSERT_TRUE(fs::exists(corpus_dir)) << corpus_dir;
  const fs::path workdir = fs::path(::testing::TempDir()) / "column_corpus";
  fs::remove_all(workdir);
  fs::create_directories(workdir);
  size_t cases = 0;
  for (const auto& entry : fs::directory_iterator(corpus_dir)) {
    if (entry.path().extension() != ".hex") continue;
    ++cases;
    SCOPED_TRACE(entry.path().filename().string());
    const std::vector<uint8_t> bytes = ParseHexCase(entry.path().string());
    const std::string target =
        (workdir / entry.path().stem().concat(".smcol")).string();
    WriteFileBytes(target, bytes);
    EXPECT_FALSE(ExerciseFile(target));
  }
  EXPECT_GE(cases, 5u) << "hostile corpus went missing";
  std::error_code ec;
  fs::remove_all(workdir, ec);
}

}  // namespace
}  // namespace smartmeter::storage
