#include <array>
#include <cmath>
#include <filesystem>
#include <memory>

#include <gtest/gtest.h>

#include "datagen/seed_generator.h"
#include "engines/benchmark_runner.h"
#include "engines/engine_factory.h"
#include "engines/engine_util.h"
#include "engines/hive_engine.h"
#include "engines/madlib_engine.h"
#include "engines/matlab_engine.h"
#include "engines/spark_engine.h"
#include "engines/systemc_engine.h"
#include "storage/csv.h"
#include "timeseries/calendar.h"

namespace smartmeter::engines {
namespace {

using table::DataSource;

namespace fs = std::filesystem;

/// Shared fixture: one small dataset written once in every layout, then
/// each engine runs each task against it. Expensive setup runs once.
class EnginesTest : public ::testing::Test {
 protected:
  static constexpr int kHouseholds = 12;

  static void SetUpTestSuite() {
    dir_ = new fs::path(fs::path(::testing::TempDir()) / "engines_test");
    fs::create_directories(*dir_);

    datagen::SeedGeneratorOptions options;
    options.num_households = kHouseholds;
    options.hours = kHoursPerYear;
    options.seed = 2024;
    dataset_ = new MeterDataset(*datagen::GenerateSeedDataset(options));

    single_csv_ = (*dir_ / "data.csv").string();
    ASSERT_TRUE(storage::WriteReadingsCsv(*dataset_, single_csv_).ok());
    auto part = storage::WritePartitionedCsv(*dataset_,
                                             (*dir_ / "part").string());
    ASSERT_TRUE(part.ok());
    partitioned_files_ = new std::vector<std::string>(std::move(*part));
    household_lines_ = (*dir_ / "wide.csv").string();
    ASSERT_TRUE(
        storage::WriteHouseholdLinesCsv(*dataset_, household_lines_).ok());
    auto whole = storage::WriteWholeHouseholdFiles(
        *dataset_, (*dir_ / "whole").string(), 4);
    ASSERT_TRUE(whole.ok());
    whole_files_ = new std::vector<std::string>(std::move(*whole));

    // Reference results straight from the core algorithms, one
    // TaskResultSet per task.
    reference_ = new std::array<TaskResultSet, 4>();
    for (core::TaskType task : core::kAllTasks) {
      TaskResultSet& results = (*reference_)[static_cast<size_t>(task)];
      auto metrics =
          RunTaskOverDataset(exec::QueryContext::Background(), *dataset_,
                             TaskOptions::Default(task), 1, &results);
      ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
    }
  }

  static void TearDownTestSuite() {
    std::error_code ec;
    fs::remove_all(*dir_, ec);
    delete dataset_;
    delete partitioned_files_;
    delete whole_files_;
    delete reference_;
    delete dir_;
  }

  static DataSource SingleCsvSource() {
    return *DataSource::SingleCsv(single_csv_);
  }
  static DataSource PartitionedSource() {
    return *DataSource::PartitionedDir(*partitioned_files_);
  }
  static DataSource HouseholdLinesSource() {
    return *DataSource::HouseholdLines(household_lines_);
  }
  static DataSource WholeFilesSource() {
    return *DataSource::WholeFileDir(*whole_files_);
  }

  static EngineFactoryOptions FactoryOptions() {
    EngineFactoryOptions options;
    options.spool_dir = (*dir_ / "spool").string();
    options.cluster.num_nodes = 4;
    options.cluster.slots_per_node = 2;
    options.block_bytes = 64 << 10;
    return options;
  }

  static const TaskResultSet& Reference(core::TaskType task) {
    return (*reference_)[static_cast<size_t>(task)];
  }

  /// CSV serialization keeps 4 decimals of consumption and 2 of
  /// temperature, so engine results agree with the in-memory reference
  /// only to a loose tolerance.
  static void ExpectMatchesReference(const TaskResultSet& results,
                                     core::TaskType task) {
    switch (task) {
      case core::TaskType::kHistogram: {
        const auto& got_all = results.Get<core::HistogramResult>();
        const auto& want_all = Reference(task).Get<core::HistogramResult>();
        ASSERT_EQ(got_all.size(), want_all.size());
        for (size_t i = 0; i < got_all.size(); ++i) {
          const auto& got = got_all[i];
          const auto& want = want_all[i];
          EXPECT_EQ(got.household_id, want.household_id);
          ASSERT_EQ(got.histogram.counts.size(),
                    want.histogram.counts.size());
          for (size_t b = 0; b < got.histogram.counts.size(); ++b) {
            // Rounding can move a reading across a bucket edge.
            EXPECT_NEAR(static_cast<double>(got.histogram.counts[b]),
                        static_cast<double>(want.histogram.counts[b]), 8.0)
                << "household " << got.household_id << " bucket " << b;
          }
        }
        break;
      }
      case core::TaskType::kThreeLine: {
        const auto& got_all = results.Get<core::ThreeLineResult>();
        const auto& want_all = Reference(task).Get<core::ThreeLineResult>();
        ASSERT_EQ(got_all.size(), want_all.size());
        for (size_t i = 0; i < got_all.size(); ++i) {
          const auto& got = got_all[i];
          const auto& want = want_all[i];
          EXPECT_EQ(got.household_id, want.household_id);
          // Temperature rounds to 2 decimals on disk, which can move
          // readings across 1-degree bins; allow 3% relative slack.
          auto tol = [](double v) {
            return std::max(0.03, 0.03 * std::abs(v));
          };
          EXPECT_NEAR(got.heating_gradient, want.heating_gradient,
                      tol(want.heating_gradient));
          EXPECT_NEAR(got.cooling_gradient, want.cooling_gradient,
                      tol(want.cooling_gradient));
          EXPECT_NEAR(got.base_load, want.base_load, 0.05);
        }
        break;
      }
      case core::TaskType::kPar: {
        const auto& got_all = results.Get<core::DailyProfileResult>();
        const auto& want_all =
            Reference(task).Get<core::DailyProfileResult>();
        ASSERT_EQ(got_all.size(), want_all.size());
        for (size_t i = 0; i < got_all.size(); ++i) {
          const auto& got = got_all[i];
          const auto& want = want_all[i];
          EXPECT_EQ(got.household_id, want.household_id);
          ASSERT_EQ(got.profile.size(), 24u);
          for (int h = 0; h < 24; ++h) {
            EXPECT_NEAR(got.profile[static_cast<size_t>(h)],
                        want.profile[static_cast<size_t>(h)], 0.02)
                << "household " << got.household_id << " hour " << h;
          }
        }
        break;
      }
      case core::TaskType::kSimilarity: {
        const auto& got_all = results.Get<core::SimilarityResult>();
        const auto& want_all = Reference(task).Get<core::SimilarityResult>();
        ASSERT_EQ(got_all.size(), want_all.size());
        for (size_t i = 0; i < got_all.size(); ++i) {
          const auto& got = got_all[i];
          const auto& want = want_all[i];
          EXPECT_EQ(got.household_id, want.household_id);
          ASSERT_FALSE(got.matches.empty());
          // The best match is stable under rounding.
          EXPECT_EQ(got.matches[0].household_id,
                    want.matches[0].household_id);
          EXPECT_NEAR(got.matches[0].cosine, want.matches[0].cosine, 1e-3);
        }
        break;
      }
    }
  }

  static void RunAllTasksAndCheck(AnalyticsEngine* engine,
                                  const DataSource& source,
                                  bool skip_similarity = false) {
    auto attach = engine->Attach(source);
    ASSERT_TRUE(attach.ok()) << attach.status().ToString();
    for (core::TaskType task : core::kAllTasks) {
      if (skip_similarity && task == core::TaskType::kSimilarity) continue;
      TaskResultSet results;
      auto metrics = engine->RunTask(TaskOptions::Default(task), &results);
      ASSERT_TRUE(metrics.ok())
          << engine->name() << "/" << core::TaskName(task) << ": "
          << metrics.status().ToString();
      ExpectMatchesReference(results, task);
    }
  }

  static fs::path* dir_;
  static MeterDataset* dataset_;
  static std::string single_csv_;
  static std::vector<std::string>* partitioned_files_;
  static std::string household_lines_;
  static std::vector<std::string>* whole_files_;
  static std::array<TaskResultSet, 4>* reference_;
};

fs::path* EnginesTest::dir_ = nullptr;
MeterDataset* EnginesTest::dataset_ = nullptr;
std::string EnginesTest::single_csv_;
std::vector<std::string>* EnginesTest::partitioned_files_ = nullptr;
std::string EnginesTest::household_lines_;
std::vector<std::string>* EnginesTest::whole_files_ = nullptr;
std::array<TaskResultSet, 4>* EnginesTest::reference_ = nullptr;

// ---------------------------------------------------------------------------
// Per-engine agreement with the reference implementation
// ---------------------------------------------------------------------------

TEST_F(EnginesTest, MatlabPartitionedMatchesReference) {
  MatlabEngine engine;
  RunAllTasksAndCheck(&engine, PartitionedSource());
}

TEST_F(EnginesTest, MatlabSingleCsvMatchesReference) {
  MatlabEngine engine;
  RunAllTasksAndCheck(&engine, SingleCsvSource());
}

TEST_F(EnginesTest, MatlabWarmMatchesCold) {
  MatlabEngine engine;
  ASSERT_TRUE(engine.Attach(PartitionedSource()).ok());
  ASSERT_TRUE(engine.WarmUp().ok());
  for (core::TaskType task : core::kAllTasks) {
    TaskResultSet results;
    ASSERT_TRUE(engine.RunTask(TaskOptions::Default(task), &results).ok());
    ExpectMatchesReference(results, task);
  }
}

TEST_F(EnginesTest, MadlibRowLayoutMatchesReference) {
  MadlibEngine engine(MadlibEngine::TableLayout::kRow);
  RunAllTasksAndCheck(&engine, SingleCsvSource());
}

TEST_F(EnginesTest, MadlibArrayLayoutMatchesReference) {
  MadlibEngine engine(MadlibEngine::TableLayout::kArray);
  RunAllTasksAndCheck(&engine, SingleCsvSource());
}

TEST_F(EnginesTest, SystemCMatchesReference) {
  SystemCEngine engine(FactoryOptions().spool_dir);
  RunAllTasksAndCheck(&engine, SingleCsvSource());
}

TEST_F(EnginesTest, SystemCWarmMatches) {
  SystemCEngine engine(FactoryOptions().spool_dir + "_warm");
  ASSERT_TRUE(engine.Attach(SingleCsvSource()).ok());
  auto warm = engine.WarmUp();
  ASSERT_TRUE(warm.ok());
  TaskResultSet results;
  ASSERT_TRUE(
      engine.RunTask(TaskOptions::Default(core::TaskType::kHistogram),
                     &results)
          .ok());
  ExpectMatchesReference(results, core::TaskType::kHistogram);
}

TEST_F(EnginesTest, HiveFormat1MatchesReference) {
  HiveEngine::Options options;
  options.cluster = FactoryOptions().cluster;
  options.block_bytes = FactoryOptions().block_bytes;
  HiveEngine engine(options);
  RunAllTasksAndCheck(&engine, SingleCsvSource());
}

TEST_F(EnginesTest, HiveFormat2MatchesReference) {
  HiveEngine::Options options;
  options.cluster = FactoryOptions().cluster;
  HiveEngine engine(options);
  RunAllTasksAndCheck(&engine, HouseholdLinesSource());
}

TEST_F(EnginesTest, HiveFormat3UdtfMatchesReference) {
  HiveEngine::Options options;
  options.cluster = FactoryOptions().cluster;
  options.format3_style = HiveEngine::Format3Style::kUdtf;
  HiveEngine engine(options);
  RunAllTasksAndCheck(&engine, WholeFilesSource(),
                      /*skip_similarity=*/true);
}

TEST_F(EnginesTest, HiveFormat3UdafMatchesReference) {
  HiveEngine::Options options;
  options.cluster = FactoryOptions().cluster;
  options.format3_style = HiveEngine::Format3Style::kUdaf;
  HiveEngine engine(options);
  RunAllTasksAndCheck(&engine, WholeFilesSource(),
                      /*skip_similarity=*/true);
}

TEST_F(EnginesTest, HiveFormat3RejectsSimilarity) {
  HiveEngine::Options options;
  options.cluster = FactoryOptions().cluster;
  HiveEngine engine(options);
  ASSERT_TRUE(engine.Attach(WholeFilesSource()).ok());
  EXPECT_EQ(engine
                .RunTask(TaskOptions::Default(core::TaskType::kSimilarity),
                         nullptr)
                .status()
                .code(),
            StatusCode::kNotSupported);
}

TEST_F(EnginesTest, SparkFormat1MatchesReference) {
  SparkEngine::Options options;
  options.cluster = FactoryOptions().cluster;
  options.block_bytes = FactoryOptions().block_bytes;
  SparkEngine engine(options);
  RunAllTasksAndCheck(&engine, SingleCsvSource());
}

TEST_F(EnginesTest, SparkFormat2MatchesReference) {
  SparkEngine::Options options;
  options.cluster = FactoryOptions().cluster;
  SparkEngine engine(options);
  RunAllTasksAndCheck(&engine, HouseholdLinesSource());
}

TEST_F(EnginesTest, SparkFormat3MatchesReference) {
  SparkEngine::Options options;
  options.cluster = FactoryOptions().cluster;
  SparkEngine engine(options);
  RunAllTasksAndCheck(&engine, WholeFilesSource(),
                      /*skip_similarity=*/true);
}

TEST_F(EnginesTest, SparkTooManyFilesFails) {
  SparkEngine::Options options;
  options.cluster = FactoryOptions().cluster;
  options.cluster.cost.spark_max_open_files = 2;  // Tiny limit for test.
  SparkEngine engine(options);
  // The descriptor wall fires at job submission (Attach).
  EXPECT_EQ(engine.Attach(WholeFilesSource()).status().code(),
            StatusCode::kIOError);
}

// ---------------------------------------------------------------------------
// Behavioural checks
// ---------------------------------------------------------------------------

TEST_F(EnginesTest, ClusterEnginesReportSimulatedTime) {
  HiveEngine::Options options;
  options.cluster = FactoryOptions().cluster;
  HiveEngine engine(options);
  ASSERT_TRUE(engine.Attach(SingleCsvSource()).ok());
  auto metrics =
      engine.RunTask(TaskOptions::Default(core::TaskType::kHistogram),
                     nullptr);
  ASSERT_TRUE(metrics.ok());
  EXPECT_TRUE(metrics->simulated);
  EXPECT_GT(metrics->seconds, 0.0);
  EXPECT_GT(metrics->modeled_memory_bytes, 0);
}

TEST_F(EnginesTest, ThreadCountDoesNotChangeResults) {
  MatlabEngine engine;
  ASSERT_TRUE(engine.Attach(PartitionedSource()).ok());
  const TaskOptions options =
      TaskOptions::Default(core::TaskType::kThreeLine);
  TaskResultSet one, four;
  engine.SetThreads(1);
  ASSERT_TRUE(engine.RunTask(options, &one).ok());
  engine.SetThreads(4);
  ASSERT_TRUE(engine.RunTask(options, &four).ok());
  const auto& one_models = one.Get<core::ThreeLineResult>();
  const auto& four_models = four.Get<core::ThreeLineResult>();
  ASSERT_EQ(one_models.size(), four_models.size());
  for (size_t i = 0; i < one_models.size(); ++i) {
    EXPECT_EQ(one_models[i].household_id, four_models[i].household_id);
    EXPECT_DOUBLE_EQ(one_models[i].heating_gradient,
                     four_models[i].heating_gradient);
  }
}

TEST_F(EnginesTest, ThreeLinePhasesReported) {
  MadlibEngine engine;
  ASSERT_TRUE(engine.Attach(SingleCsvSource()).ok());
  auto metrics =
      engine.RunTask(TaskOptions::Default(core::TaskType::kThreeLine),
                     nullptr);
  ASSERT_TRUE(metrics.ok());
  EXPECT_GT(metrics->phases.quantile_seconds, 0.0);
  EXPECT_GT(metrics->phases.regression_seconds, 0.0);
}

TEST_F(EnginesTest, SimilarityHouseholdLimitRespected) {
  SystemCEngine engine(FactoryOptions().spool_dir + "_limit");
  ASSERT_TRUE(engine.Attach(SingleCsvSource()).ok());
  SimilarityTaskOptions similarity;
  similarity.households = 5;
  TaskResultSet results;
  ASSERT_TRUE(engine.RunTask(TaskOptions(similarity), &results).ok());
  EXPECT_EQ(results.Get<core::SimilarityResult>().size(), 5u);
}

TEST_F(EnginesTest, EngineFactoryMakesAllKinds) {
  for (EngineKind kind :
       {EngineKind::kMatlab, EngineKind::kMadlib, EngineKind::kSystemC,
        EngineKind::kSpark, EngineKind::kHive}) {
    auto engine = MakeEngine(kind, FactoryOptions());
    ASSERT_NE(engine, nullptr) << EngineKindName(kind);
    EXPECT_FALSE(engine->name().empty());
  }
}

TEST_F(EnginesTest, FeatureMatrixMatchesTable1) {
  const auto matrix = BuiltinFunctionMatrix();
  ASSERT_EQ(matrix.size(), 4u);
  EXPECT_EQ(matrix[0].function, "Histogram");
  EXPECT_EQ(matrix[0].system_c, "no");   // System C ships nothing.
  EXPECT_EQ(matrix[3].matlab, "no");     // Nobody ships cosine similarity.
}

TEST_F(EnginesTest, BenchmarkRunnerEndToEnd) {
  RunSpec spec;
  spec.kind = EngineKind::kSystemC;
  spec.factory = FactoryOptions();
  spec.factory.spool_dir = FactoryOptions().spool_dir + "_runner";
  spec.source = SingleCsvSource();
  spec.options = TaskOptions::Default(core::TaskType::kHistogram);
  spec.keep_outputs = true;
  auto report = RunBenchmark(spec);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->attach_seconds, 0.0);
  EXPECT_GT(report->task_seconds, 0.0);
  EXPECT_EQ(report->results.Get<core::HistogramResult>().size(),
            static_cast<size_t>(kHouseholds));
}

TEST_F(EnginesTest, EnginesRejectWrongLayouts) {
  MatlabEngine matlab;
  EXPECT_EQ(matlab.Attach(HouseholdLinesSource()).status().code(),
            StatusCode::kNotSupported);
  HiveEngine::Options options;
  options.cluster = FactoryOptions().cluster;
  HiveEngine hive(options);
  EXPECT_EQ(hive.Attach(PartitionedSource()).status().code(),
            StatusCode::kNotSupported);
  MatlabEngine no_files;
  DataSource empty;
  EXPECT_EQ(no_files.Attach(empty).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// DataSource named constructors
// ---------------------------------------------------------------------------

TEST_F(EnginesTest, DataSourceNamedConstructorsValidate) {
  // Happy paths.
  ASSERT_TRUE(DataSource::SingleCsv(single_csv_).ok());
  ASSERT_TRUE(DataSource::PartitionedDir(*partitioned_files_).ok());
  ASSERT_TRUE(DataSource::HouseholdLines(household_lines_).ok());
  ASSERT_TRUE(DataSource::WholeFileDir(*whole_files_).ok());

  // Directory form enumerates the partition files itself.
  auto scanned =
      DataSource::PartitionedDir((*dir_ / "part").string());
  ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();
  EXPECT_EQ(scanned->files.size(), partitioned_files_->size());

  // Missing file.
  EXPECT_EQ(DataSource::SingleCsv((*dir_ / "nope.csv").string())
                .status()
                .code(),
            StatusCode::kIOError);
  // Empty partition list.
  EXPECT_EQ(DataSource::PartitionedDir(std::vector<std::string>{})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Partition files spanning two directories.
  std::vector<std::string> spread = {(*partitioned_files_)[0], single_csv_};
  EXPECT_EQ(DataSource::PartitionedDir(spread).status().code(),
            StatusCode::kInvalidArgument);
  // Household lines without the temperature sidecar.
  EXPECT_EQ(DataSource::HouseholdLines(single_csv_).status().code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace smartmeter::engines
