#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "datagen/seed_generator.h"
#include "datagen/temperature_model.h"
#include "stats/descriptive.h"
#include "timeseries/calendar.h"

namespace smartmeter::datagen {
namespace {

// ---------------------------------------------------------------------------
// Temperature model
// ---------------------------------------------------------------------------

TEST(TemperatureModelTest, ProducesRequestedLength) {
  EXPECT_EQ(GenerateTemperatureSeries(100).size(), 100u);
  EXPECT_EQ(GenerateTemperatureSeries(kHoursPerYear).size(),
            static_cast<size_t>(kHoursPerYear));
}

TEST(TemperatureModelTest, DeterministicInSeed) {
  const auto a = GenerateTemperatureSeries(500);
  const auto b = GenerateTemperatureSeries(500);
  EXPECT_EQ(a, b);
  TemperatureModelOptions other;
  other.seed = 999;
  const auto c = GenerateTemperatureSeries(500, other);
  EXPECT_NE(a, c);
}

TEST(TemperatureModelTest, WinterColdSummerWarm) {
  const auto series = GenerateTemperatureSeries(kHoursPerYear);
  // January mean far below July mean.
  double january = 0.0, july = 0.0;
  for (int h = 0; h < 31 * 24; ++h) january += series[static_cast<size_t>(h)];
  january /= 31 * 24;
  const int july_start = (31 + 28 + 31 + 30 + 31 + 30) * 24;
  for (int h = july_start; h < july_start + 31 * 24; ++h) {
    july += series[static_cast<size_t>(h)];
  }
  july /= 31 * 24;
  EXPECT_LT(january, 0.0);
  EXPECT_GT(july, 15.0);
  EXPECT_GT(july - january, 15.0);
}

TEST(TemperatureModelTest, AfternoonWarmerThanNight) {
  const auto series = GenerateTemperatureSeries(kHoursPerYear);
  double at_15 = 0.0, at_03 = 0.0;
  for (int d = 0; d < kDaysPerYear; ++d) {
    at_15 += series[static_cast<size_t>(d * 24 + 15)];
    at_03 += series[static_cast<size_t>(d * 24 + 3)];
  }
  EXPECT_GT(at_15 / kDaysPerYear, at_03 / kDaysPerYear + 3.0);
}

TEST(TemperatureModelTest, RangeIsOntarioLike) {
  const auto series = GenerateTemperatureSeries(kHoursPerYear);
  const double lo = *std::min_element(series.begin(), series.end());
  const double hi = *std::max_element(series.begin(), series.end());
  EXPECT_LT(lo, -5.0);
  EXPECT_GT(lo, -45.0);
  EXPECT_GT(hi, 20.0);
  EXPECT_LT(hi, 45.0);
}

// ---------------------------------------------------------------------------
// Seed generator
// ---------------------------------------------------------------------------

SeedGeneratorOptions SmallSeedOptions(int households = 30) {
  SeedGeneratorOptions options;
  options.num_households = households;
  options.hours = kHoursPerYear;
  options.seed = 42;
  return options;
}

TEST(SeedGeneratorTest, ProducesValidDataset) {
  auto ds = GenerateSeedDataset(SmallSeedOptions());
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->num_consumers(), 30u);
  EXPECT_EQ(ds->hours(), static_cast<size_t>(kHoursPerYear));
  EXPECT_TRUE(ds->Validate().ok());
}

TEST(SeedGeneratorTest, ConsumptionNonNegative) {
  auto ds = GenerateSeedDataset(SmallSeedOptions(10));
  ASSERT_TRUE(ds.ok());
  for (const auto& c : ds->consumers()) {
    for (double v : c.consumption) EXPECT_GE(v, 0.0);
  }
}

TEST(SeedGeneratorTest, DeterministicInSeed) {
  auto a = GenerateSeedDataset(SmallSeedOptions(5));
  auto b = GenerateSeedDataset(SmallSeedOptions(5));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a->consumer(i).consumption, b->consumer(i).consumption);
  }
}

TEST(SeedGeneratorTest, HouseholdsDiffer) {
  auto ds = GenerateSeedDataset(SmallSeedOptions(5));
  ASSERT_TRUE(ds.ok());
  EXPECT_NE(ds->consumer(0).consumption, ds->consumer(1).consumption);
}

TEST(SeedGeneratorTest, WinterLoadExceedsShoulderLoad) {
  // Heating dominates in this climate, so January consumption should on
  // average exceed May consumption across the population.
  auto ds = GenerateSeedDataset(SmallSeedOptions(40));
  ASSERT_TRUE(ds.ok());
  double january = 0.0, may = 0.0;
  const int may_start = (31 + 28 + 31 + 30) * 24;
  for (const auto& c : ds->consumers()) {
    for (int h = 0; h < 31 * 24; ++h) {
      january += c.consumption[static_cast<size_t>(h)];
    }
    for (int h = may_start; h < may_start + 31 * 24; ++h) {
      may += c.consumption[static_cast<size_t>(h)];
    }
  }
  EXPECT_GT(january, may * 1.1);
}

TEST(SeedGeneratorTest, RejectsBadOptions) {
  SeedGeneratorOptions options = SmallSeedOptions();
  options.num_households = 0;
  EXPECT_FALSE(GenerateSeedDataset(options).ok());
  options = SmallSeedOptions();
  options.hours = 3;
  EXPECT_FALSE(GenerateSeedDataset(options).ok());
}

TEST(SeedGeneratorTest, ArchetypeWeightsCoverPopulation) {
  const auto& archetypes = BuiltinArchetypes();
  ASSERT_EQ(archetypes.size(), 5u);
  double total = 0.0;
  for (const auto& a : archetypes) {
    EXPECT_GT(a.population_weight, 0.0);
    EXPECT_LE(a.activity_scale_min, a.activity_scale_max);
    EXPECT_LE(a.heating_gradient_min, a.heating_gradient_max);
    EXPECT_LT(a.heating_balance_c, a.cooling_balance_c);
    total += a.population_weight;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Paper data generator (Section 4)
// ---------------------------------------------------------------------------

class DataGeneratorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SeedGeneratorOptions options;
    options.num_households = 40;
    options.hours = kHoursPerYear;
    options.seed = 77;
    seed_ = new MeterDataset(*GenerateSeedDataset(options));
    DataGeneratorOptions gen_options;
    gen_options.num_clusters = 4;
    gen_options.noise_sigma = 0.05;
    generator_ = new DataGenerator(*DataGenerator::Train(*seed_,
                                                         gen_options));
  }
  static void TearDownTestSuite() {
    delete generator_;
    delete seed_;
    generator_ = nullptr;
    seed_ = nullptr;
  }

  static MeterDataset* seed_;
  static DataGenerator* generator_;
};

MeterDataset* DataGeneratorTest::seed_ = nullptr;
DataGenerator* DataGeneratorTest::generator_ = nullptr;

TEST_F(DataGeneratorTest, TrainExtractsFeaturesForMostConsumers) {
  EXPECT_GE(generator_->features().size(), 35u);
  for (const auto& f : generator_->features()) {
    EXPECT_EQ(f.profile.size(), 24u);
    EXPECT_GE(f.heating_gradient, 0.0);
    EXPECT_GE(f.cooling_gradient, 0.0);
  }
}

TEST_F(DataGeneratorTest, ClustersAreNonEmptyAndCoverFeatures) {
  size_t members = 0;
  ASSERT_FALSE(generator_->cluster_members().empty());
  for (const auto& cluster : generator_->cluster_members()) {
    EXPECT_FALSE(cluster.empty());
    members += cluster.size();
  }
  EXPECT_EQ(members, generator_->features().size());
  EXPECT_EQ(generator_->clusters().centroids.size(),
            generator_->cluster_members().size());
}

TEST_F(DataGeneratorTest, GeneratesRequestedPopulation) {
  auto generated =
      generator_->Generate(25, seed_->temperature(), /*seed=*/5,
                           /*first_household_id=*/1000);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  EXPECT_EQ(generated->num_consumers(), 25u);
  EXPECT_EQ(generated->hours(), seed_->hours());
  EXPECT_TRUE(generated->Validate().ok());
  EXPECT_EQ(generated->consumer(0).household_id, 1000);
  EXPECT_EQ(generated->consumer(24).household_id, 1024);
  for (const auto& c : generated->consumers()) {
    for (double v : c.consumption) EXPECT_GE(v, 0.0);
  }
}

TEST_F(DataGeneratorTest, GenerationIsDeterministicInSeed) {
  auto a = generator_->Generate(3, seed_->temperature(), 9);
  auto b = generator_->Generate(3, seed_->temperature(), 9);
  auto c = generator_->Generate(3, seed_->temperature(), 10);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(a->consumer(0).consumption, b->consumer(0).consumption);
  EXPECT_NE(a->consumer(0).consumption, c->consumer(0).consumption);
}

TEST_F(DataGeneratorTest, GeneratedPopulationResemblesSeed) {
  // The generated population's overall consumption level should be in
  // the same ballpark as the seed's (the generator re-aggregates seed
  // pieces, it does not invent new scale).
  auto generated = generator_->Generate(30, seed_->temperature(), 3);
  ASSERT_TRUE(generated.ok());
  auto mean_of = [](const MeterDataset& ds) {
    double total = 0.0;
    for (const auto& c : ds.consumers()) {
      total += stats::Mean(c.consumption);
    }
    return total / static_cast<double>(ds.num_consumers());
  };
  const double seed_mean = mean_of(*seed_);
  const double gen_mean = mean_of(*generated);
  EXPECT_GT(gen_mean, seed_mean * 0.5);
  EXPECT_LT(gen_mean, seed_mean * 1.5);
}

TEST_F(DataGeneratorTest, GeneratedConsumersShowDailyStructure) {
  auto generated = generator_->Generate(20, seed_->temperature(), 21);
  ASSERT_TRUE(generated.ok());
  // Averaged over the population and the year, 6pm load exceeds 3am load
  // (every archetype is more active in the evening). Individual
  // consumers may invert this when a strong heating gradient meets cold
  // nights, so the assertion is population-level.
  double evening = 0.0, night = 0.0;
  for (const auto& c : generated->consumers()) {
    for (int d = 0; d < kDaysPerYear; ++d) {
      evening += c.consumption[static_cast<size_t>(d * 24 + 18)];
      night += c.consumption[static_cast<size_t>(d * 24 + 3)];
    }
  }
  EXPECT_GT(evening, night);
}

TEST_F(DataGeneratorTest, GenerateValidatesArguments) {
  EXPECT_FALSE(generator_->Generate(-1, seed_->temperature(), 1).ok());
  EXPECT_FALSE(generator_->Generate(1, {}, 1).ok());
}

TEST(DataGeneratorTrainTest, RejectsBadOptions) {
  SeedGeneratorOptions seed_options;
  seed_options.num_households = 5;
  auto seed = GenerateSeedDataset(seed_options);
  ASSERT_TRUE(seed.ok());
  DataGeneratorOptions options;
  options.num_clusters = 0;
  EXPECT_FALSE(DataGenerator::Train(*seed, options).ok());
  options = DataGeneratorOptions();
  options.noise_sigma = -1.0;
  EXPECT_FALSE(DataGenerator::Train(*seed, options).ok());
}

TEST(DataGeneratorTrainTest, FailsOnUnusableSeed) {
  // Two consumers with constant temperature: 3-line cannot fit.
  MeterDataset seed;
  seed.SetTemperature(std::vector<double>(kHoursPerYear, 10.0));
  seed.AddConsumer({1, std::vector<double>(kHoursPerYear, 1.0)});
  seed.AddConsumer({2, std::vector<double>(kHoursPerYear, 2.0)});
  EXPECT_FALSE(DataGenerator::Train(seed, {}).ok());
}

}  // namespace
}  // namespace smartmeter::datagen
