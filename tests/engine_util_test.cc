#include <chrono>
#include <cmath>

#include <gtest/gtest.h>

#include "datagen/seed_generator.h"
#include "engines/engine_util.h"
#include "exec/query_context.h"
#include "timeseries/calendar.h"

namespace smartmeter::engines {
namespace {

using table::DataSource;
using table::DataSourceLayoutName;

class EngineUtilTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::SeedGeneratorOptions options;
    options.num_households = 8;
    options.hours = kHoursPerYear;
    options.seed = 33;
    dataset_ = new MeterDataset(*datagen::GenerateSeedDataset(options));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static MeterDataset* dataset_;
};

MeterDataset* EngineUtilTest::dataset_ = nullptr;

TEST_F(EngineUtilTest, BatchPathMatchesDatasetPath) {
  // Running through an explicitly-built batch view must give identical
  // results to the dataset convenience wrapper.
  auto batch = table::ColumnarBatch::FromDataset(*dataset_);
  ASSERT_TRUE(batch.ok()) << batch.status().message();
  ASSERT_EQ(batch->count(), dataset_->num_consumers());
  ASSERT_FALSE(batch->contiguous());

  const exec::QueryContext& ctx = exec::QueryContext::Background();
  for (core::TaskType task : core::kAllTasks) {
    const TaskOptions options = TaskOptions::Default(task);
    TaskResultSet via_access, via_dataset;
    ASSERT_TRUE(
        RunTaskOverBatch(ctx, *batch, options, 2, &via_access).ok());
    ASSERT_TRUE(
        RunTaskOverDataset(ctx, *dataset_, options, 2, &via_dataset).ok());
    switch (task) {
      case core::TaskType::kHistogram: {
        const auto& got = via_access.Get<core::HistogramResult>();
        const auto& want = via_dataset.Get<core::HistogramResult>();
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i].histogram.counts, want[i].histogram.counts);
        }
        break;
      }
      case core::TaskType::kThreeLine: {
        const auto& got = via_access.Get<core::ThreeLineResult>();
        const auto& want = via_dataset.Get<core::ThreeLineResult>();
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_DOUBLE_EQ(got[i].heating_gradient,
                           want[i].heating_gradient);
        }
        break;
      }
      case core::TaskType::kPar: {
        const auto& got = via_access.Get<core::DailyProfileResult>();
        const auto& want = via_dataset.Get<core::DailyProfileResult>();
        for (size_t i = 0; i < got.size(); ++i) {
          EXPECT_EQ(got[i].profile, want[i].profile);
        }
        break;
      }
      case core::TaskType::kSimilarity: {
        const auto& got = via_access.Get<core::SimilarityResult>();
        const auto& want = via_dataset.Get<core::SimilarityResult>();
        for (size_t i = 0; i < got.size(); ++i) {
          ASSERT_FALSE(got[i].matches.empty());
          EXPECT_EQ(got[i].matches[0].household_id,
                    want[i].matches[0].household_id);
        }
        break;
      }
    }
  }
}

TEST_F(EngineUtilTest, ContiguousBatchMatchesSlicedBatch) {
  // The same data through the contiguous (column-file) layout and the
  // sliced (in-memory dataset) layout must agree bit-for-bit.
  std::vector<int64_t> ids;
  std::vector<double> column;
  for (size_t i = 0; i < dataset_->num_consumers(); ++i) {
    const auto& consumer = dataset_->consumer(i);
    ids.push_back(consumer.household_id);
    column.insert(column.end(), consumer.consumption.begin(),
                  consumer.consumption.end());
  }
  auto contiguous = table::ColumnarBatch::FromContiguous(
      ids, column, dataset_->temperature(), dataset_->hours());
  ASSERT_TRUE(contiguous.ok()) << contiguous.status().message();
  ASSERT_TRUE(contiguous->contiguous());
  ASSERT_EQ(contiguous->consumption_column().size(), column.size());

  auto sliced = table::ColumnarBatch::FromDataset(*dataset_);
  ASSERT_TRUE(sliced.ok());

  const exec::QueryContext& ctx = exec::QueryContext::Background();
  const TaskOptions options = TaskOptions::Default(core::TaskType::kThreeLine);
  TaskResultSet via_contiguous, via_sliced;
  ASSERT_TRUE(
      RunTaskOverBatch(ctx, *contiguous, options, 2, &via_contiguous).ok());
  ASSERT_TRUE(RunTaskOverBatch(ctx, *sliced, options, 2, &via_sliced).ok());
  const auto& got = via_contiguous.Get<core::ThreeLineResult>();
  const auto& want = via_sliced.Get<core::ThreeLineResult>();
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].household_id, want[i].household_id);
    EXPECT_EQ(got[i].heating_gradient, want[i].heating_gradient);
    EXPECT_EQ(got[i].cooling_gradient, want[i].cooling_gradient);
  }
}

TEST_F(EngineUtilTest, SimilarityLimitCapsQueries) {
  SimilarityTaskOptions similarity;
  similarity.households = 3;
  TaskResultSet results;
  ASSERT_TRUE(RunTaskOverDataset(exec::QueryContext::Background(), *dataset_,
                                 TaskOptions(similarity), 1, &results)
                  .ok());
  const auto& matches = results.Get<core::SimilarityResult>();
  EXPECT_EQ(matches.size(), 3u);
  // Matches also come only from the capped set.
  for (const auto& r : matches) {
    for (const auto& m : r.matches) {
      EXPECT_LE(m.household_id, 3);
    }
  }
}

TEST_F(EngineUtilTest, ErrorsPropagateFromWorkers) {
  // A dataset too short for PAR makes every worker fail; the first
  // error must surface, not crash or hang.
  MeterDataset shorty;
  shorty.SetTemperature(std::vector<double>(24, 5.0));
  shorty.AddConsumer({1, std::vector<double>(24, 1.0)});
  shorty.AddConsumer({2, std::vector<double>(24, 1.0)});
  auto metrics =
      RunTaskOverDataset(exec::QueryContext::Background(), shorty,
                         TaskOptions::Default(core::TaskType::kPar), 4,
                         nullptr);
  EXPECT_FALSE(metrics.ok());
  EXPECT_EQ(metrics.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineUtilTest, NullResultsStillTimes) {
  auto metrics = RunTaskOverDataset(
      exec::QueryContext::Background(), *dataset_,
      TaskOptions::Default(core::TaskType::kHistogram), 1, nullptr);
  ASSERT_TRUE(metrics.ok());
  EXPECT_GE(metrics->seconds, 0.0);
}

TEST_F(EngineUtilTest, CancelledContextStopsRun) {
  exec::QueryContext ctx;
  ctx.RequestCancel();
  auto metrics = RunTaskOverDataset(
      ctx, *dataset_, TaskOptions::Default(core::TaskType::kHistogram), 2,
      nullptr);
  EXPECT_FALSE(metrics.ok());
  EXPECT_EQ(metrics.status().code(), StatusCode::kCancelled);
}

TEST_F(EngineUtilTest, ExpiredDeadlineStopsRun) {
  exec::QueryContext ctx;
  ctx.set_deadline(exec::QueryContext::Clock::now() -
                   std::chrono::milliseconds(1));
  auto metrics = RunTaskOverDataset(
      ctx, *dataset_, TaskOptions::Default(core::TaskType::kSimilarity), 2,
      nullptr);
  EXPECT_FALSE(metrics.ok());
  EXPECT_EQ(metrics.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(EngineUtilTest, LayoutNamesStable) {
  EXPECT_EQ(DataSourceLayoutName(DataSource::Layout::kSingleCsv),
            "single-csv");
  EXPECT_EQ(DataSourceLayoutName(DataSource::Layout::kPartitionedDir),
            "partitioned-dir");
  EXPECT_EQ(DataSourceLayoutName(DataSource::Layout::kHouseholdLines),
            "household-lines");
  EXPECT_EQ(DataSourceLayoutName(DataSource::Layout::kWholeFileDir),
            "whole-file-dir");
}

}  // namespace
}  // namespace smartmeter::engines
