#include <cmath>

#include <gtest/gtest.h>

#include "datagen/seed_generator.h"
#include "engines/engine_util.h"
#include "timeseries/calendar.h"

namespace smartmeter::engines {
namespace {

class EngineUtilTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::SeedGeneratorOptions options;
    options.num_households = 8;
    options.hours = kHoursPerYear;
    options.seed = 33;
    dataset_ = new MeterDataset(*datagen::GenerateSeedDataset(options));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static MeterDataset* dataset_;
};

MeterDataset* EngineUtilTest::dataset_ = nullptr;

TEST_F(EngineUtilTest, SeriesAccessorMatchesDatasetPath) {
  // Running through a custom accessor must give identical results to the
  // dataset convenience wrapper.
  SeriesAccess access;
  access.count = dataset_->num_consumers();
  access.household_id = [this_ = dataset_](size_t i) {
    return this_->consumer(i).household_id;
  };
  access.consumption = [this_ = dataset_](size_t i) {
    return std::span<const double>(this_->consumer(i).consumption);
  };
  access.temperature = dataset_->temperature();

  for (core::TaskType task : core::kAllTasks) {
    TaskRequest request;
    request.task = task;
    TaskOutputs via_access, via_dataset;
    ASSERT_TRUE(RunTaskOverSeries(access, request, 2, &via_access).ok());
    ASSERT_TRUE(
        RunTaskOverDataset(*dataset_, request, 2, &via_dataset).ok());
    switch (task) {
      case core::TaskType::kHistogram:
        ASSERT_EQ(via_access.histograms.size(),
                  via_dataset.histograms.size());
        for (size_t i = 0; i < via_access.histograms.size(); ++i) {
          EXPECT_EQ(via_access.histograms[i].histogram.counts,
                    via_dataset.histograms[i].histogram.counts);
        }
        break;
      case core::TaskType::kThreeLine:
        for (size_t i = 0; i < via_access.three_lines.size(); ++i) {
          EXPECT_DOUBLE_EQ(via_access.three_lines[i].heating_gradient,
                           via_dataset.three_lines[i].heating_gradient);
        }
        break;
      case core::TaskType::kPar:
        for (size_t i = 0; i < via_access.profiles.size(); ++i) {
          EXPECT_EQ(via_access.profiles[i].profile,
                    via_dataset.profiles[i].profile);
        }
        break;
      case core::TaskType::kSimilarity:
        for (size_t i = 0; i < via_access.similarities.size(); ++i) {
          ASSERT_FALSE(via_access.similarities[i].matches.empty());
          EXPECT_EQ(via_access.similarities[i].matches[0].household_id,
                    via_dataset.similarities[i].matches[0].household_id);
        }
        break;
    }
  }
}

TEST_F(EngineUtilTest, SimilarityLimitCapsQueries) {
  TaskRequest request;
  request.task = core::TaskType::kSimilarity;
  request.similarity_households = 3;
  TaskOutputs outputs;
  ASSERT_TRUE(RunTaskOverDataset(*dataset_, request, 1, &outputs).ok());
  EXPECT_EQ(outputs.similarities.size(), 3u);
  // Matches also come only from the capped set.
  for (const auto& r : outputs.similarities) {
    for (const auto& m : r.matches) {
      EXPECT_LE(m.household_id, 3);
    }
  }
}

TEST_F(EngineUtilTest, ErrorsPropagateFromWorkers) {
  // A dataset too short for PAR makes every worker fail; the first
  // error must surface, not crash or hang.
  MeterDataset shorty;
  shorty.SetTemperature(std::vector<double>(24, 5.0));
  shorty.AddConsumer({1, std::vector<double>(24, 1.0)});
  shorty.AddConsumer({2, std::vector<double>(24, 1.0)});
  TaskRequest request;
  request.task = core::TaskType::kPar;
  auto metrics = RunTaskOverDataset(shorty, request, 4, nullptr);
  EXPECT_FALSE(metrics.ok());
  EXPECT_EQ(metrics.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineUtilTest, NullOutputsStillTimes) {
  TaskRequest request;
  request.task = core::TaskType::kHistogram;
  auto metrics = RunTaskOverDataset(*dataset_, request, 1, nullptr);
  ASSERT_TRUE(metrics.ok());
  EXPECT_GE(metrics->seconds, 0.0);
}

TEST_F(EngineUtilTest, LayoutNamesStable) {
  EXPECT_EQ(DataSourceLayoutName(DataSource::Layout::kSingleCsv),
            "single-csv");
  EXPECT_EQ(DataSourceLayoutName(DataSource::Layout::kPartitionedDir),
            "partitioned-dir");
  EXPECT_EQ(DataSourceLayoutName(DataSource::Layout::kHouseholdLines),
            "household-lines");
  EXPECT_EQ(DataSourceLayoutName(DataSource::Layout::kWholeFileDir),
            "whole-file-dir");
}

}  // namespace
}  // namespace smartmeter::engines
