#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "timeseries/calendar.h"
#include "timeseries/dataset.h"
#include "timeseries/resample.h"

namespace smartmeter {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

// ---------------------------------------------------------------------------
// Calendar
// ---------------------------------------------------------------------------

TEST(CalendarTest, Constants) {
  EXPECT_EQ(kHoursPerYear, 8760);
  EXPECT_EQ(kHoursPerDay * kDaysPerYear, kHoursPerYear);
}

TEST(CalendarTest, HourOfDayWraps) {
  EXPECT_EQ(HourlyCalendar::HourOfDay(0), 0);
  EXPECT_EQ(HourlyCalendar::HourOfDay(23), 23);
  EXPECT_EQ(HourlyCalendar::HourOfDay(24), 0);
  EXPECT_EQ(HourlyCalendar::HourOfDay(8759), 23);
}

TEST(CalendarTest, DayOfYear) {
  EXPECT_EQ(HourlyCalendar::DayOfYear(0), 0);
  EXPECT_EQ(HourlyCalendar::DayOfYear(23), 0);
  EXPECT_EQ(HourlyCalendar::DayOfYear(24), 1);
  EXPECT_EQ(HourlyCalendar::DayOfYear(8759), 364);
}

TEST(CalendarTest, YearStartsOnTuesday) {
  EXPECT_EQ(HourlyCalendar::DayOfWeek(0), 1);          // Tuesday.
  EXPECT_EQ(HourlyCalendar::DayOfWeek(4 * 24), 5);     // Saturday Jan 5.
  EXPECT_TRUE(HourlyCalendar::IsWeekend(4 * 24));
  EXPECT_TRUE(HourlyCalendar::IsWeekend(5 * 24));      // Sunday Jan 6.
  EXPECT_FALSE(HourlyCalendar::IsWeekend(6 * 24));     // Monday Jan 7.
}

TEST(CalendarTest, MonthBoundaries) {
  EXPECT_EQ(HourlyCalendar::Month(0), 0);                    // Jan 1.
  EXPECT_EQ(HourlyCalendar::Month(30 * 24 + 23), 0);         // Jan 31.
  EXPECT_EQ(HourlyCalendar::Month(31 * 24), 1);              // Feb 1.
  EXPECT_EQ(HourlyCalendar::Month((31 + 28) * 24), 2);       // Mar 1.
  EXPECT_EQ(HourlyCalendar::Month(8759), 11);                // Dec 31.
}

TEST(CalendarTest, WeekendFractionIsPlausible) {
  int weekend_days = 0;
  for (int d = 0; d < kDaysPerYear; ++d) {
    if (HourlyCalendar::IsWeekend(HourlyCalendar::DayStartHour(d))) {
      ++weekend_days;
    }
  }
  EXPECT_GE(weekend_days, 104);
  EXPECT_LE(weekend_days, 105);
}

// ---------------------------------------------------------------------------
// MeterDataset
// ---------------------------------------------------------------------------

MeterDataset SmallDataset() {
  MeterDataset ds;
  ds.SetTemperature({1.0, 2.0, 3.0});
  ds.AddConsumer({101, {0.5, 0.6, 0.7}});
  ds.AddConsumer({102, {1.5, 1.6, 1.7}});
  return ds;
}

TEST(MeterDatasetTest, ValidatesGoodData) {
  EXPECT_TRUE(SmallDataset().Validate().ok());
}

TEST(MeterDatasetTest, RejectsEmptyTemperature) {
  MeterDataset ds;
  ds.AddConsumer({1, {1.0}});
  EXPECT_FALSE(ds.Validate().ok());
}

TEST(MeterDatasetTest, RejectsMisalignedSeries) {
  MeterDataset ds = SmallDataset();
  ds.AddConsumer({103, {1.0}});
  EXPECT_EQ(ds.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(MeterDatasetTest, RejectsDuplicateIds) {
  MeterDataset ds = SmallDataset();
  ds.AddConsumer({101, {9.0, 9.0, 9.0}});
  EXPECT_EQ(ds.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(MeterDatasetTest, FindHousehold) {
  MeterDataset ds = SmallDataset();
  auto found = ds.FindHousehold(102);
  ASSERT_TRUE(found.ok());
  EXPECT_DOUBLE_EQ((*found)->consumption[0], 1.5);
  EXPECT_EQ(ds.FindHousehold(999).status().code(), StatusCode::kNotFound);
}

TEST(MeterDatasetTest, CountsAndSizes) {
  MeterDataset ds = SmallDataset();
  EXPECT_EQ(ds.hours(), 3u);
  EXPECT_EQ(ds.num_consumers(), 2u);
  EXPECT_EQ(ds.TotalReadings(), 6);
  EXPECT_EQ(ds.ApproxCsvBytes(), 6 * 42);
}

TEST(MeterDatasetTest, TruncateConsumers) {
  MeterDataset ds = SmallDataset();
  ds.TruncateConsumers(1);
  EXPECT_EQ(ds.num_consumers(), 1u);
  ds.TruncateConsumers(10);  // No-op.
  EXPECT_EQ(ds.num_consumers(), 1u);
}

// ---------------------------------------------------------------------------
// FillGaps
// ---------------------------------------------------------------------------

TEST(FillGapsTest, InteriorGapLinearlyInterpolated) {
  std::vector<double> v = {1.0, kNan, kNan, 4.0};
  auto filled = FillGaps(&v);
  ASSERT_TRUE(filled.ok());
  EXPECT_EQ(*filled, 2);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
  EXPECT_DOUBLE_EQ(v[2], 3.0);
}

TEST(FillGapsTest, EdgesExtrapolateConstant) {
  std::vector<double> v = {kNan, 5.0, kNan};
  auto filled = FillGaps(&v);
  ASSERT_TRUE(filled.ok());
  EXPECT_EQ(*filled, 2);
  EXPECT_DOUBLE_EQ(v[0], 5.0);
  EXPECT_DOUBLE_EQ(v[2], 5.0);
}

TEST(FillGapsTest, NoGapsIsNoop) {
  std::vector<double> v = {1.0, 2.0};
  auto filled = FillGaps(&v);
  ASSERT_TRUE(filled.ok());
  EXPECT_EQ(*filled, 0);
}

TEST(FillGapsTest, AllNanFails) {
  std::vector<double> v = {kNan, kNan};
  EXPECT_FALSE(FillGaps(&v).ok());
}


// ---------------------------------------------------------------------------
// Resampling
// ---------------------------------------------------------------------------

TEST(ResampleTest, QuarterHourlyEnergySumsToHourly) {
  // One hour of 15-minute kWh readings sums to the hourly total.
  const std::vector<double> quarter = {0.1, 0.2, 0.3, 0.4,
                                       1.0, 1.0, 1.0, 1.0};
  auto hourly = AggregateEnergy(quarter, 4);
  ASSERT_TRUE(hourly.ok());
  ASSERT_EQ(hourly->size(), 2u);
  EXPECT_NEAR((*hourly)[0], 1.0, 1e-12);
  EXPECT_NEAR((*hourly)[1], 4.0, 1e-12);
}

TEST(ResampleTest, TemperatureAverages) {
  const std::vector<double> quarter = {0.0, 10.0, 20.0, 30.0};
  auto hourly = AggregateMean(quarter, 4);
  ASSERT_TRUE(hourly.ok());
  ASSERT_EQ(hourly->size(), 1u);
  EXPECT_DOUBLE_EQ((*hourly)[0], 15.0);
}

TEST(ResampleTest, FactorOneIsIdentity) {
  const std::vector<double> v = {1.0, 2.0, 3.0};
  auto out = AggregateEnergy(v, 1);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, v);
}

TEST(ResampleTest, RejectsBadShapes) {
  const std::vector<double> v = {1.0, 2.0, 3.0};
  EXPECT_FALSE(AggregateEnergy(v, 2).ok());
  EXPECT_FALSE(AggregateEnergy(v, 0).ok());
  EXPECT_FALSE(AggregateEnergy({}, 1).ok());
}

TEST(ResampleTest, DailyTotalsOverTwoDays) {
  std::vector<double> hourly(48, 0.5);
  hourly[30] = 2.5;  // Day 2 carries an extra 2 kWh.
  auto days = DailyTotals(hourly);
  ASSERT_TRUE(days.ok());
  ASSERT_EQ(days->size(), 2u);
  EXPECT_NEAR((*days)[0], 12.0, 1e-12);
  EXPECT_NEAR((*days)[1], 14.0, 1e-12);
}

TEST(ResampleTest, EnergyConservedThroughAggregation) {
  std::vector<double> quarter(4 * 24 * 7);
  double total = 0.0;
  for (size_t i = 0; i < quarter.size(); ++i) {
    quarter[i] = 0.01 * static_cast<double>(i % 97);
    total += quarter[i];
  }
  auto hourly = AggregateEnergy(quarter, 4);
  ASSERT_TRUE(hourly.ok());
  auto daily = DailyTotals(*hourly);
  ASSERT_TRUE(daily.ok());
  double daily_total = 0.0;
  for (double d : *daily) daily_total += d;
  EXPECT_NEAR(daily_total, total, 1e-9);
}

}  // namespace
}  // namespace smartmeter
