#include <cmath>

#include <gtest/gtest.h>

#include "engines/cluster_task_util.h"
#include "engines/result_serde.h"

namespace smartmeter::engines::internal {
namespace {

TEST(AssembleSeriesTest, SortsByHour) {
  std::vector<HourRecord> records = {
      {2, 0.3, 10.0}, {0, 0.1, 8.0}, {1, 0.2, 9.0}};
  std::vector<double> consumption, temperature;
  AssembleSeries(&records, &consumption, &temperature);
  const std::vector<double> expected_c = {0.1, 0.2, 0.3};
  const std::vector<double> expected_t = {8.0, 9.0, 10.0};
  EXPECT_EQ(consumption, expected_c);
  EXPECT_EQ(temperature, expected_t);
}

TEST(AssembleSeriesTest, EmptyInput) {
  std::vector<HourRecord> records;
  std::vector<double> consumption, temperature;
  AssembleSeries(&records, &consumption, &temperature);
  EXPECT_TRUE(consumption.empty());
  EXPECT_TRUE(temperature.empty());
}

TEST(ParseHouseholdLineTest, ParsesIdAndReadings) {
  auto parsed = ParseHouseholdLine("42,0.5,1.25,0.75");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->household_id, 42);
  const std::vector<double> expected = {0.5, 1.25, 0.75};
  EXPECT_EQ(parsed->consumption, expected);
}

TEST(ParseHouseholdLineTest, RejectsMalformed) {
  EXPECT_FALSE(ParseHouseholdLine("").ok());
  EXPECT_FALSE(ParseHouseholdLine("42").ok());
  EXPECT_FALSE(ParseHouseholdLine("x,1.0").ok());
  EXPECT_FALSE(ParseHouseholdLine("42,abc").ok());
}

TEST(ComputeHouseholdTaskTest, DispatchesPerTask) {
  std::vector<double> consumption, temperature;
  // A year of synthetic data with enough variation for all tasks.
  for (int t = 0; t < 365 * 24; ++t) {
    temperature.push_back(10.0 + 15.0 * std::sin(t * 0.0007));
    consumption.push_back(0.5 + 0.1 * ((t % 24) / 24.0) +
                          0.02 * std::max(0.0, 12.0 - temperature.back()));
  }
  TaskOutputs outputs;
  TaskRequest request;
  request.task = core::TaskType::kHistogram;
  ASSERT_TRUE(ComputeHouseholdTask(request, 7, consumption, temperature,
                                   &outputs)
                  .ok());
  request.task = core::TaskType::kThreeLine;
  ASSERT_TRUE(ComputeHouseholdTask(request, 7, consumption, temperature,
                                   &outputs)
                  .ok());
  request.task = core::TaskType::kPar;
  ASSERT_TRUE(ComputeHouseholdTask(request, 7, consumption, temperature,
                                   &outputs)
                  .ok());
  EXPECT_EQ(outputs.histograms.size(), 1u);
  EXPECT_EQ(outputs.three_lines.size(), 1u);
  EXPECT_EQ(outputs.profiles.size(), 1u);
  EXPECT_EQ(outputs.histograms[0].household_id, 7);

  request.task = core::TaskType::kSimilarity;
  EXPECT_FALSE(ComputeHouseholdTask(request, 7, consumption, temperature,
                                    &outputs)
                   .ok());
}

TEST(SortOutputsTest, OrdersEveryVectorById) {
  TaskOutputs outputs;
  outputs.histograms.push_back({3, {}});
  outputs.histograms.push_back({1, {}});
  outputs.three_lines.push_back({});
  outputs.three_lines.back().household_id = 9;
  outputs.three_lines.push_back({});
  outputs.three_lines.back().household_id = 2;
  core::SimilarityResult s1;
  s1.household_id = 5;
  core::SimilarityResult s2;
  s2.household_id = 4;
  outputs.similarities = {s1, s2};
  SortOutputsByHousehold(&outputs);
  EXPECT_EQ(outputs.histograms[0].household_id, 1);
  EXPECT_EQ(outputs.three_lines[0].household_id, 2);
  EXPECT_EQ(outputs.similarities[0].household_id, 4);
}

TEST(ResultSerdeTest, SizesScaleWithContent) {
  core::HistogramResult hist;
  hist.histogram.counts.assign(10, 0);
  EXPECT_EQ(core::ApproxByteSize(hist), 8 + 16 + 80);

  core::ThreeLineResult lines;
  EXPECT_GT(core::ApproxByteSize(lines), 100);

  core::DailyProfileResult profile;
  profile.profile.assign(24, 0.0);
  profile.coefficients.assign(24, std::vector<double>(5, 0.0));
  profile.temperature_beta.assign(24, 0.0);
  const int64_t small = core::ApproxByteSize(profile);
  profile.coefficients.assign(24, std::vector<double>(10, 0.0));
  EXPECT_GT(core::ApproxByteSize(profile), small);

  core::SimilarityResult sim;
  sim.matches.resize(10);
  EXPECT_EQ(core::ApproxByteSize(sim), 8 + 16 + 160);
}

}  // namespace
}  // namespace smartmeter::engines::internal
