#include <gtest/gtest.h>

#include "engines/cluster_task_util.h"
#include "engines/result_serde.h"
#include "engines/task_api.h"

namespace smartmeter::engines::internal {
namespace {

TEST(AssembleSeriesTest, SortsByHour) {
  std::vector<HourRecord> records = {
      {2, 0.3, 10.0}, {0, 0.1, 8.0}, {1, 0.2, 9.0}};
  std::vector<double> consumption, temperature;
  AssembleSeries(&records, &consumption, &temperature);
  const std::vector<double> expected_c = {0.1, 0.2, 0.3};
  const std::vector<double> expected_t = {8.0, 9.0, 10.0};
  EXPECT_EQ(consumption, expected_c);
  EXPECT_EQ(temperature, expected_t);
}

TEST(AssembleSeriesTest, EmptyInput) {
  std::vector<HourRecord> records;
  std::vector<double> consumption, temperature;
  AssembleSeries(&records, &consumption, &temperature);
  EXPECT_TRUE(consumption.empty());
  EXPECT_TRUE(temperature.empty());
}

TEST(ParseHouseholdLineTest, ParsesIdAndReadings) {
  auto parsed = ParseHouseholdLine("42,0.5,1.25,0.75");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->household_id, 42);
  const std::vector<double> expected = {0.5, 1.25, 0.75};
  EXPECT_EQ(parsed->consumption, expected);
}

TEST(ParseHouseholdLineTest, RejectsMalformed) {
  EXPECT_FALSE(ParseHouseholdLine("").ok());
  EXPECT_FALSE(ParseHouseholdLine("42").ok());
  EXPECT_FALSE(ParseHouseholdLine("x,1.0").ok());
  EXPECT_FALSE(ParseHouseholdLine("42,abc").ok());
}

TEST(SortResultsTest, OrdersHeldVectorById) {
  TaskResultSet results;
  results.Mutable<core::HistogramResult>().push_back({3, {}});
  results.Mutable<core::HistogramResult>().push_back({1, {}});
  SortResultsByHousehold(&results);
  EXPECT_EQ(results.Get<core::HistogramResult>()[0].household_id, 1);

  results.Clear();
  core::SimilarityResult s1;
  s1.household_id = 5;
  core::SimilarityResult s2;
  s2.household_id = 4;
  results.Mutable<core::SimilarityResult>() = {s1, s2};
  SortResultsByHousehold(&results);
  EXPECT_EQ(results.Get<core::SimilarityResult>()[0].household_id, 4);
}

TEST(MergeResultsTest, AdoptsTypeAndAppends) {
  TaskResultSet dst;
  TaskResultSet src;
  src.Mutable<core::HistogramResult>().push_back({2, {}});
  MergeResults(std::move(src), &dst);
  ASSERT_TRUE(dst.Holds<core::HistogramResult>());
  EXPECT_EQ(dst.size(), 1u);

  TaskResultSet more;
  more.Mutable<core::HistogramResult>().push_back({1, {}});
  MergeResults(std::move(more), &dst);
  EXPECT_EQ(dst.size(), 2u);

  // Merging an empty set is a no-op.
  MergeResults(TaskResultSet(), &dst);
  EXPECT_EQ(dst.size(), 2u);
}

TEST(ResultSerdeTest, SizesScaleWithContent) {
  core::HistogramResult hist;
  hist.histogram.counts.assign(10, 0);
  EXPECT_EQ(core::ApproxByteSize(hist), 8 + 16 + 80);

  core::ThreeLineResult lines;
  EXPECT_GT(core::ApproxByteSize(lines), 100);

  core::DailyProfileResult profile;
  profile.profile.assign(24, 0.0);
  profile.coefficients.assign(24, std::vector<double>(5, 0.0));
  profile.temperature_beta.assign(24, 0.0);
  const int64_t small = core::ApproxByteSize(profile);
  profile.coefficients.assign(24, std::vector<double>(10, 0.0));
  EXPECT_GT(core::ApproxByteSize(profile), small);

  core::SimilarityResult sim;
  sim.matches.resize(10);
  EXPECT_EQ(core::ApproxByteSize(sim), 8 + 16 + 160);
}

}  // namespace
}  // namespace smartmeter::engines::internal
