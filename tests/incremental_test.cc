// Incremental-kernel parity pins: each incremental form, fed one
// reading at a time, must reproduce the batch kernel bit-for-bit at
// every snapshot point — and results over (base + delta) must match a
// full batch recompute over the concatenated data across all five
// engines. Tolerance-based comparisons are banned here on purpose.
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/histogram_task.h"
#include "core/incremental.h"
#include "core/par_task.h"
#include "core/three_line_task.h"
#include "datagen/seed_generator.h"
#include "engines/engine_util.h"
#include "engines/hive_engine.h"
#include "engines/madlib_engine.h"
#include "engines/matlab_engine.h"
#include "engines/spark_engine.h"
#include "engines/systemc_engine.h"
#include "exec/query_context.h"
#include "simd/simd.h"
#include "storage/column_store.h"
#include "table/delta_store.h"
#include "timeseries/calendar.h"

namespace smartmeter::core {
namespace {

namespace fs = std::filesystem;

class IncrementalTest : public ::testing::Test {
 protected:
  static constexpr int kHouseholds = 5;
  static constexpr int kDays = 40;
  static constexpr int kHours = kDays * kHoursPerDay;

  static void SetUpTestSuite() {
    datagen::SeedGeneratorOptions options;
    options.num_households = kHouseholds;
    options.hours = kHours;
    options.seed = 2026;
    dataset_ = new MeterDataset(*datagen::GenerateSeedDataset(options));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  static std::span<const double> Consumption(int i) {
    return dataset_->consumers()[static_cast<size_t>(i)].consumption;
  }
  static std::span<const double> Temperature() {
    return dataset_->temperature();
  }
  static int64_t HouseholdId(int i) {
    return dataset_->consumers()[static_cast<size_t>(i)].household_id;
  }

  static MeterDataset* dataset_;
};

MeterDataset* IncrementalTest::dataset_ = nullptr;

void ExpectHistogramEq(const stats::EquiWidthHistogram& got,
                       const stats::EquiWidthHistogram& want) {
  EXPECT_EQ(got.min, want.min);
  EXPECT_EQ(got.max, want.max);
  EXPECT_EQ(got.counts, want.counts);
}

// ---------------------------------------------------------------------------
// IncrementalHistogram
// ---------------------------------------------------------------------------

TEST_F(IncrementalTest, HistogramBitIdenticalAtEveryCheckpoint) {
  const std::span<const double> values = Consumption(0);
  IncrementalHistogram inc;
  const std::vector<size_t> checkpoints = {1, 7, 100, 500,
                                           static_cast<size_t>(kHours)};
  size_t fed = 0;
  for (const size_t stop : checkpoints) {
    for (; fed < stop; ++fed) inc.Append(values[fed]);
    auto got = inc.Snapshot();
    ASSERT_TRUE(got.ok()) << got.status().message();
    auto want = ComputeConsumptionHistogram(values.first(stop));
    ASSERT_TRUE(want.ok()) << want.status().message();
    SCOPED_TRACE(stop);
    ExpectHistogramEq(*got, *want);
  }
  // Most appends must have taken the O(1) path, not a rebin.
  EXPECT_LT(inc.rebuilds(), 64);
}

TEST_F(IncrementalTest, HistogramRangeExtensionRebuildsExactly) {
  IncrementalHistogram inc;
  std::vector<double> values;
  // Alternate range extensions with interior values so both paths run.
  const double pattern[] = {5.0, 1.0, 9.0, 5.5, 0.5, 9.5, 2.0, -3.0, 12.0, 4.0};
  for (double v : pattern) {
    values.push_back(v);
    inc.Append(v);
    auto got = inc.Snapshot();
    ASSERT_TRUE(got.ok());
    auto want = ComputeConsumptionHistogram(values);
    ASSERT_TRUE(want.ok());
    ExpectHistogramEq(*got, *want);
  }
}

TEST_F(IncrementalTest, HistogramJunkParity) {
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  IncrementalHistogram inc;
  std::vector<double> values = {1.0, kNaN, 3.0, kNaN, 2.0, 100.0, kNaN};
  for (double v : values) inc.Append(v);
  auto got = inc.Snapshot();
  ASSERT_TRUE(got.ok());
  auto want = ComputeConsumptionHistogram(values);
  ASSERT_TRUE(want.ok());
  ExpectHistogramEq(*got, *want);
}

TEST_F(IncrementalTest, HistogramErrorParity) {
  IncrementalHistogram empty;
  EXPECT_FALSE(empty.Snapshot().ok());

  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  IncrementalHistogram all_nan;
  all_nan.Append(kNaN);
  all_nan.Append(kNaN);
  auto got = all_nan.Snapshot();
  auto want = ComputeConsumptionHistogram(std::vector<double>{kNaN, kNaN});
  EXPECT_FALSE(got.ok());
  EXPECT_FALSE(want.ok());
  EXPECT_EQ(got.status().code(), want.status().code());
  // An error snapshot must not poison later ones: extend past the NaNs.
  all_nan.Append(2.5);
  auto recovered = all_nan.Snapshot();
  ASSERT_TRUE(recovered.ok());
  auto recovered_want =
      ComputeConsumptionHistogram(std::vector<double>{kNaN, kNaN, 2.5});
  ASSERT_TRUE(recovered_want.ok());
  ExpectHistogramEq(*recovered, *recovered_want);
}

// ---------------------------------------------------------------------------
// IncrementalDailyProfile
// ---------------------------------------------------------------------------

TEST_F(IncrementalTest, DailyProfileBitIdenticalAtDayBoundaries) {
  const std::span<const double> consumption = Consumption(1);
  const std::span<const double> temperature = Temperature();
  IncrementalDailyProfile inc(HouseholdId(1));
  size_t fed = 0;
  for (const int stop_days : {10, 23, kDays}) {
    const size_t stop = static_cast<size_t>(stop_days) * kHoursPerDay;
    for (; fed < stop; ++fed) inc.Append(consumption[fed], temperature[fed]);
    auto got = inc.Fit();
    ASSERT_TRUE(got.ok()) << got.status().message();
    auto want = ComputeDailyProfile(consumption.first(stop),
                                    temperature.first(stop), HouseholdId(1));
    ASSERT_TRUE(want.ok()) << want.status().message();
    SCOPED_TRACE(stop_days);
    EXPECT_EQ(got->profile, want->profile);
    EXPECT_EQ(got->temperature_beta, want->temperature_beta);
    EXPECT_EQ(got->coefficients, want->coefficients);
  }
}

TEST_F(IncrementalTest, DailyProfilePartialDayIgnoredLikeBatch) {
  const std::span<const double> consumption = Consumption(2);
  const std::span<const double> temperature = Temperature();
  const size_t cut = 15 * kHoursPerDay + 7;  // Mid-day.
  IncrementalDailyProfile inc(HouseholdId(2));
  for (size_t t = 0; t < cut; ++t) inc.Append(consumption[t], temperature[t]);
  auto got = inc.Fit();
  auto want = ComputeDailyProfile(consumption.first(cut),
                                  temperature.first(cut), HouseholdId(2));
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(got->profile, want->profile);
  EXPECT_EQ(got->coefficients, want->coefficients);
}

TEST_F(IncrementalTest, DailyProfileErrorParity) {
  const std::span<const double> consumption = Consumption(0);
  const std::span<const double> temperature = Temperature();
  const size_t too_short = 5 * kHoursPerDay;
  IncrementalDailyProfile inc(HouseholdId(0));
  for (size_t t = 0; t < too_short; ++t) {
    inc.Append(consumption[t], temperature[t]);
  }
  auto got = inc.Fit();
  auto want = ComputeDailyProfile(consumption.first(too_short),
                                  temperature.first(too_short), HouseholdId(0));
  ASSERT_FALSE(got.ok());
  ASSERT_FALSE(want.ok());
  EXPECT_EQ(got.status().code(), want.status().code());
  EXPECT_EQ(got.status().message(), want.status().message());
}

// ---------------------------------------------------------------------------
// IncrementalThreeLine
// ---------------------------------------------------------------------------

TEST_F(IncrementalTest, ThreeLineBitIdenticalAtCheckpoints) {
  const std::span<const double> consumption = Consumption(3);
  const std::span<const double> temperature = Temperature();
  IncrementalThreeLine inc(HouseholdId(3));
  size_t fed = 0;
  for (const size_t stop : {static_cast<size_t>(kHours) / 2,
                            static_cast<size_t>(kHours)}) {
    for (; fed < stop; ++fed) inc.Append(consumption[fed], temperature[fed]);
    ThreeLinePhases got_phases;
    auto got = inc.Fit(&got_phases);
    ASSERT_TRUE(got.ok()) << got.status().message();
    ThreeLinePhases want_phases;
    auto want =
        ComputeThreeLine(consumption.first(stop), temperature.first(stop),
                         HouseholdId(3), ThreeLineOptions{}, &want_phases);
    ASSERT_TRUE(want.ok()) << want.status().message();
    SCOPED_TRACE(stop);
    EXPECT_EQ(got->heating_gradient, want->heating_gradient);
    EXPECT_EQ(got->cooling_gradient, want->cooling_gradient);
    EXPECT_EQ(got->base_load, want->base_load);
    EXPECT_EQ(got->p90.left.fit.slope, want->p90.left.fit.slope);
    EXPECT_EQ(got->p90.left.fit.intercept, want->p90.left.fit.intercept);
    EXPECT_EQ(got->p90.mid.fit.slope, want->p90.mid.fit.slope);
    EXPECT_EQ(got->p90.right.fit.slope, want->p90.right.fit.slope);
    EXPECT_EQ(got->p10.left.fit.intercept, want->p10.left.fit.intercept);
    EXPECT_EQ(got->p10.right.fit.intercept, want->p10.right.fit.intercept);
    EXPECT_EQ(got_phases.band_points, want_phases.band_points);
    EXPECT_EQ(got_phases.band_reallocs, want_phases.band_reallocs);
  }
}

TEST_F(IncrementalTest, ThreeLineOnlineBinCountsMatchBatchBinning) {
  const std::span<const double> consumption = Consumption(4);
  const std::span<const double> temperature = Temperature();
  IncrementalThreeLine inc(HouseholdId(4));
  for (size_t t = 0; t < static_cast<size_t>(kHours); ++t) {
    inc.Append(consumption[t], temperature[t]);
  }
  std::vector<int32_t> bin_idx(static_cast<size_t>(kHours));
  simd::BinIndicesInt32(temperature.first(static_cast<size_t>(kHours)), 1.0,
                        bin_idx);
  std::map<int32_t, size_t> want_counts;
  for (int32_t b : bin_idx) ++want_counts[b];
  ASSERT_EQ(inc.bins().size(), want_counts.size());
  size_t total = 0;
  for (const auto& [bin, values] : inc.bins()) {
    EXPECT_EQ(values.size(), want_counts[bin]) << "bin " << bin;
    total += values.size();
  }
  EXPECT_EQ(total, static_cast<size_t>(kHours));
}

TEST_F(IncrementalTest, ThreeLineErrorParity) {
  IncrementalThreeLine empty(1);
  EXPECT_FALSE(empty.Fit().ok());

  ThreeLineOptions bad;
  bad.temperature_bin_width = 0.0;
  IncrementalThreeLine zero_width(1, bad);
  zero_width.Append(1.0, 20.0);
  auto got = zero_width.Fit();
  auto want = ComputeThreeLine(std::vector<double>{1.0},
                               std::vector<double>{20.0}, 1, bad);
  ASSERT_FALSE(got.ok());
  ASSERT_FALSE(want.ok());
  EXPECT_EQ(got.status().message(), want.status().message());
}

// ---------------------------------------------------------------------------
// Five-engine acceptance: incremental over base + delta vs. a full
// batch recompute over the rebuilt monolithic column file.
// ---------------------------------------------------------------------------

TEST_F(IncrementalTest, BaseMergedWithDeltaMatchesFiveEngineRecompute) {
  namespace eng = smartmeter::engines;
  const fs::path dir = fs::path(::testing::TempDir()) / "incremental_engines";
  fs::create_directories(dir);

  // Split the series: the first kBaseDays land in an immutable SMCOLV1
  // base, the rest stream through the delta store reading by reading.
  constexpr int kBaseDays = 25;
  constexpr size_t kBaseHours = static_cast<size_t>(kBaseDays) * kHoursPerDay;
  MeterDataset base;
  for (const ConsumerSeries& c : dataset_->consumers()) {
    ConsumerSeries head;
    head.household_id = c.household_id;
    head.consumption.assign(c.consumption.begin(),
                            c.consumption.begin() + kBaseHours);
    base.AddConsumer(std::move(head));
  }
  base.SetTemperature(std::vector<double>(
      dataset_->temperature().begin(),
      dataset_->temperature().begin() + kBaseHours));
  ASSERT_TRUE(base.Validate().ok());

  table::DeltaStore store;
  auto base_batch = table::ColumnarBatch::FromDataset(base);
  ASSERT_TRUE(base_batch.ok());
  ASSERT_TRUE(store.AttachBase(*base_batch).ok());

  // Live tail: hour-major interleave, the shape a metering feed has.
  std::vector<std::unique_ptr<IncrementalHistogram>> hists;
  std::vector<std::unique_ptr<IncrementalDailyProfile>> profiles;
  std::vector<std::unique_ptr<IncrementalThreeLine>> lines;
  for (int i = 0; i < kHouseholds; ++i) {
    hists.push_back(std::make_unique<IncrementalHistogram>());
    profiles.push_back(std::make_unique<IncrementalDailyProfile>(
        HouseholdId(i)));
    lines.push_back(std::make_unique<IncrementalThreeLine>(HouseholdId(i)));
    // The incremental kernels see the whole history (base then delta),
    // exactly what a batch recompute over the merged table sees.
    for (size_t t = 0; t < kBaseHours; ++t) {
      hists[static_cast<size_t>(i)]->Append(Consumption(i)[t]);
      profiles[static_cast<size_t>(i)]->Append(Consumption(i)[t],
                                               Temperature()[t]);
      lines[static_cast<size_t>(i)]->Append(Consumption(i)[t],
                                            Temperature()[t]);
    }
  }
  for (size_t t = kBaseHours; t < static_cast<size_t>(kHours); ++t) {
    for (int i = 0; i < kHouseholds; ++i) {
      ASSERT_TRUE(store
                      .Append(HouseholdId(i), static_cast<int64_t>(t),
                              Consumption(i)[t], Temperature()[t])
                      .ok());
      hists[static_cast<size_t>(i)]->Append(Consumption(i)[t]);
      profiles[static_cast<size_t>(i)]->Append(Consumption(i)[t],
                                               Temperature()[t]);
      lines[static_cast<size_t>(i)]->Append(Consumption(i)[t],
                                            Temperature()[t]);
    }
  }

  // Rebuild the monolithic column file from the merged snapshot and
  // attach it to all five engines.
  table::DeltaTableReader reader(&store);
  ASSERT_TRUE(reader.Open().ok());
  ASSERT_EQ(reader.snapshot()->hours, static_cast<size_t>(kHours));
  auto merged = table::SnapshotToDataset(*reader.snapshot());
  ASSERT_TRUE(merged.ok()) << merged.status().message();
  const std::string rebuilt = (dir / "rebuilt.smcol").string();
  ASSERT_TRUE(storage::ColumnStore::WriteFile(*merged, rebuilt).ok());

  eng::SystemCEngine systemc((dir / "spool").string());
  eng::MadlibEngine madlib;
  eng::MatlabEngine matlab;
  eng::SparkEngine spark(eng::SparkEngine::Options{});
  eng::HiveEngine hive(eng::HiveEngine::Options{});
  std::vector<eng::AnalyticsEngine*> engines = {&systemc, &madlib, &matlab,
                                                &spark, &hive};
  const table::DataSource source = *table::DataSource::ColumnFile(rebuilt);
  for (eng::AnalyticsEngine* engine : engines) {
    ASSERT_TRUE(engine->Attach(source).ok()) << engine->name();
  }

  for (eng::AnalyticsEngine* engine : engines) {
    SCOPED_TRACE(engine->name());
    eng::TaskResultSet hist_results;
    ASSERT_TRUE(engine
                    ->RunTask(eng::TaskOptions(HistogramOptions{}),
                              &hist_results)
                    .ok());
    eng::SortResultsByHousehold(&hist_results);
    const auto& hist_rows = hist_results.Get<HistogramResult>();
    ASSERT_EQ(hist_rows.size(), static_cast<size_t>(kHouseholds));
    for (const HistogramResult& row : hist_rows) {
      for (int i = 0; i < kHouseholds; ++i) {
        if (HouseholdId(i) != row.household_id) continue;
        auto inc = hists[static_cast<size_t>(i)]->Snapshot();
        ASSERT_TRUE(inc.ok());
        ExpectHistogramEq(*inc, row.histogram);
      }
    }

    eng::TaskResultSet par_results;
    ASSERT_TRUE(
        engine->RunTask(eng::TaskOptions(ParOptions{}), &par_results).ok());
    eng::SortResultsByHousehold(&par_results);
    const auto& par_rows = par_results.Get<DailyProfileResult>();
    ASSERT_EQ(par_rows.size(), static_cast<size_t>(kHouseholds));
    for (const DailyProfileResult& row : par_rows) {
      for (int i = 0; i < kHouseholds; ++i) {
        if (HouseholdId(i) != row.household_id) continue;
        auto inc = profiles[static_cast<size_t>(i)]->Fit();
        ASSERT_TRUE(inc.ok());
        EXPECT_EQ(inc->profile, row.profile);
        EXPECT_EQ(inc->coefficients, row.coefficients);
      }
    }

    eng::TaskResultSet line_results;
    ASSERT_TRUE(engine
                    ->RunTask(eng::TaskOptions(ThreeLineOptions{}),
                              &line_results)
                    .ok());
    eng::SortResultsByHousehold(&line_results);
    const auto& line_rows = line_results.Get<ThreeLineResult>();
    ASSERT_EQ(line_rows.size(), static_cast<size_t>(kHouseholds));
    for (const ThreeLineResult& row : line_rows) {
      for (int i = 0; i < kHouseholds; ++i) {
        if (HouseholdId(i) != row.household_id) continue;
        auto inc = lines[static_cast<size_t>(i)]->Fit();
        ASSERT_TRUE(inc.ok());
        EXPECT_EQ(inc->heating_gradient, row.heating_gradient);
        EXPECT_EQ(inc->cooling_gradient, row.cooling_gradient);
        EXPECT_EQ(inc->base_load, row.base_load);
      }
    }
  }

  // And the merged delta batch itself must match the rebuilt file's
  // bytes: run the ad-hoc batch path over the DeltaTableReader view.
  auto delta_batch = reader.NewBatch();
  ASSERT_TRUE(delta_batch.ok());
  eng::TaskResultSet over_delta;
  ASSERT_TRUE(eng::RunTaskOverBatch(exec::QueryContext::Background(),
                                    *delta_batch,
                                    eng::TaskOptions(HistogramOptions{}),
                                    /*num_threads=*/2, &over_delta)
                  .ok());
  eng::SortResultsByHousehold(&over_delta);
  const auto& over_delta_rows = over_delta.Get<HistogramResult>();
  ASSERT_EQ(over_delta_rows.size(), static_cast<size_t>(kHouseholds));
  for (const HistogramResult& row : over_delta_rows) {
    for (int i = 0; i < kHouseholds; ++i) {
      if (HouseholdId(i) != row.household_id) continue;
      auto inc = hists[static_cast<size_t>(i)]->Snapshot();
      ASSERT_TRUE(inc.ok());
      ExpectHistogramEq(*inc, row.histogram);
    }
  }

  std::error_code ec;
  fs::remove_all(dir, ec);
}

}  // namespace
}  // namespace smartmeter::core
