#include "simd/simd.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace smartmeter::simd {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

bool BitEqual(double a, double b) {
  return std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b);
}

/// The simd.h parity contract: bit-identical for every non-NaN result;
/// a NaN result must be NaN on both sides, but its payload bits are
/// codegen-dependent (x86 NaN propagation picks "the first source
/// operand") and deliberately out of contract.
bool ParityEqual(double a, double b) {
  return BitEqual(a, b) || (std::isnan(a) && std::isnan(b));
}

// Awkward tail lengths around every vector width (2, 4, 8, 16, 32 wide
// lanes), plus a year of hourly readings (8760).
const size_t kSizes[] = {0,  1,  2,  3,  4,  5,   7,   8,   9,   15, 16,
                         17, 31, 32, 33, 63, 64,  65,  100, 255, 8760};

/// Uniform series in [-50, 50); when `with_junk` is set, a NaN and both
/// infinities are planted mid-series.
std::vector<double> RandomSeries(size_t n, uint64_t seed,
                                 bool with_junk = false) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = rng.Uniform(-50.0, 50.0);
  if (with_junk && n >= 4) {
    v[n / 3] = kNaN;
    v[n / 2] = kInf;
    v[(3 * n) / 4] = -kInf;
  }
  return v;
}

// ---------------------------------------------------------------------------
// Level plumbing
// ---------------------------------------------------------------------------

TEST(SimdLevelTest, NamesAndDetection) {
  EXPECT_EQ(LevelName(Level::kScalar), "scalar");
  EXPECT_EQ(LevelName(Level::kNEON), "neon");
  EXPECT_EQ(LevelName(Level::kAVX2), "avx2");
  EXPECT_GE(static_cast<int>(DetectedLevel()),
            static_cast<int>(Level::kScalar));
  EXPECT_LE(static_cast<int>(ActiveLevel()),
            static_cast<int>(DetectedLevel()));
}

TEST(SimdLevelTest, ScopedLevelForcesScalarAndRestores) {
  const Level before = ActiveLevel();
  {
    ScopedLevel scoped(Level::kScalar);
    EXPECT_EQ(ActiveLevel(), Level::kScalar);
  }
  EXPECT_EQ(ActiveLevel(), before);
}

TEST(SimdLevelTest, SetActiveLevelClampsToDetected) {
  const Level before = ActiveLevel();
  SetActiveLevel(Level::kAVX2);  // May clamp down on non-AVX2 hosts.
  EXPECT_LE(static_cast<int>(ActiveLevel()),
            static_cast<int>(DetectedLevel()));
  SetActiveLevel(before);
}

// ---------------------------------------------------------------------------
// Numeric kernel parity: active (vector) level vs the scalar reference,
// bit for bit, across tails, junk values, and misaligned views
// ---------------------------------------------------------------------------

TEST(SimdParityTest, DotMatchesScalarBitwise) {
  for (const size_t n : kSizes) {
    for (const bool junk : {false, true}) {
      const std::vector<double> x = RandomSeries(n, 11 * n + 1, junk);
      const std::vector<double> y = RandomSeries(n, 13 * n + 2);
      EXPECT_TRUE(ParityEqual(Dot(x, y), DotScalar(x, y)))
          << "n=" << n << " junk=" << junk;
    }
  }
}

TEST(SimdParityTest, DotMatchesScalarOnMisalignedViews) {
  const std::vector<double> x = RandomSeries(1027, 3);
  const std::vector<double> y = RandomSeries(1027, 4);
  // A sliced batch view rarely starts on a 32-byte boundary.
  const std::span<const double> xs = std::span(x).subspan(1);
  const std::span<const double> ys = std::span(y).subspan(1);
  EXPECT_TRUE(BitEqual(Dot(xs, ys), DotScalar(xs, ys)));
}

TEST(SimdParityTest, MinMaxMatchesScalarBitwise) {
  for (const size_t n : kSizes) {
    for (const bool junk : {false, true}) {
      const std::vector<double> v = RandomSeries(n, 17 * n + 5, junk);
      double min_v = 0.0, max_v = 0.0, min_s = 0.0, max_s = 0.0;
      MinMax(v, &min_v, &max_v);
      MinMaxScalar(v, &min_s, &max_s);
      EXPECT_TRUE(BitEqual(min_v, min_s)) << "n=" << n << " junk=" << junk;
      EXPECT_TRUE(BitEqual(max_v, max_s)) << "n=" << n << " junk=" << junk;
    }
  }
}

TEST(SimdParityTest, MinMaxIgnoresNaNAndHandlesEmpty) {
  double min = 0.0, max = 0.0;
  MinMax({}, &min, &max);
  EXPECT_EQ(min, kInf);
  EXPECT_EQ(max, -kInf);
  const std::vector<double> v = {kNaN, 2.0, -3.0, kNaN, 7.0};
  MinMax(v, &min, &max);
  EXPECT_EQ(min, -3.0);
  EXPECT_EQ(max, 7.0);
  const std::vector<double> all_nan(9, kNaN);
  MinMax(all_nan, &min, &max);
  EXPECT_EQ(min, kInf);
  EXPECT_EQ(max, -kInf);
}

TEST(SimdParityTest, HistogramBinMatchesScalar) {
  for (const size_t n : kSizes) {
    for (const bool junk : {false, true}) {
      const std::vector<double> v = RandomSeries(n, 23 * n + 7, junk);
      std::vector<int64_t> counts_v(16, 0);
      std::vector<int64_t> counts_s(16, 0);
      HistogramBin(v, -50.0, 100.0 / 16.0, counts_v);
      HistogramBinScalar(v, -50.0, 100.0 / 16.0, counts_s);
      EXPECT_EQ(counts_v, counts_s) << "n=" << n << " junk=" << junk;
      int64_t total = 0;
      for (const int64_t c : counts_v) total += c;
      EXPECT_EQ(total, static_cast<int64_t>(n));
    }
  }
}

TEST(SimdParityTest, HistogramBinRoutesJunkToEdgeBuckets) {
  // NaN offsets land in bucket 0 (the old scalar cast was undefined);
  // +inf clamps into the last bucket, -inf into the first.
  const std::vector<double> v = {kNaN, kInf, -kInf, 0.5};
  std::vector<int64_t> counts(4, 0);
  HistogramBin(v, 0.0, 0.25, counts);
  EXPECT_EQ(counts[0], 2);  // NaN and -inf.
  EXPECT_EQ(counts[1], 0);
  EXPECT_EQ(counts[2], 1);  // 0.5 / 0.25 = 2.
  EXPECT_EQ(counts[3], 1);  // +inf.
}

TEST(SimdParityTest, BinIndicesInt32MatchesScalar) {
  for (const size_t n : kSizes) {
    const std::vector<double> v = RandomSeries(n, 29 * n + 11, true);
    std::vector<int32_t> out_v(n, 0);
    std::vector<int32_t> out_s(n, 1);
    BinIndicesInt32(v, 0.25, out_v);
    BinIndicesInt32Scalar(v, 0.25, out_s);
    EXPECT_EQ(out_v, out_s) << "n=" << n;
  }
}

TEST(SimdParityTest, BinIndicesInt32SaturatesJunkToSentinel) {
  constexpr int32_t kSentinel = std::numeric_limits<int32_t>::min();
  const std::vector<double> v = {kNaN, kInf, -kInf, 1e300, -1e300, 2.5};
  std::vector<int32_t> out(v.size(), 0);
  BinIndicesInt32(v, 1.0, out);
  EXPECT_EQ(out[0], kSentinel);
  EXPECT_EQ(out[1], kSentinel);
  EXPECT_EQ(out[2], kSentinel);
  EXPECT_EQ(out[3], kSentinel);
  EXPECT_EQ(out[4], kSentinel);
  EXPECT_EQ(out[5], 2);
}

/// Builds a band-selection fixture: bins spanning [-8, 8) with a few
/// out-of-window and sentinel entries, and threshold tables holding NaN
/// holes for dropped bins.
struct BandFixture {
  std::vector<double> values;
  std::vector<int32_t> bins;
  std::vector<double> lo_table;
  std::vector<double> hi_table;
  int32_t base = -8;
};

BandFixture MakeBandFixture(size_t n, uint64_t seed) {
  BandFixture fx;
  Rng rng(seed);
  fx.values = RandomSeries(n, seed, /*with_junk=*/true);
  fx.bins.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t roll = rng.UniformInt(20);
    if (roll < 16) {
      fx.bins[i] = static_cast<int32_t>(rng.UniformInt(16)) + fx.base;
    } else if (roll < 18) {
      fx.bins[i] = roll == 16 ? 1000 : -1000;  // Out of window.
    } else {
      fx.bins[i] = std::numeric_limits<int32_t>::min();  // Junk sentinel.
    }
  }
  fx.lo_table.assign(16, kNaN);
  fx.hi_table.assign(16, kNaN);
  for (size_t b = 0; b < 16; ++b) {
    if (b % 5 == 3) continue;  // NaN hole: a bin dropped as too sparse.
    fx.lo_table[b] = -25.0 + static_cast<double>(b);
    fx.hi_table[b] = 25.0 - static_cast<double>(b);
  }
  return fx;
}

TEST(SimdParityTest, CountAndSelectBandsMatchScalar) {
  for (const size_t n : kSizes) {
    const BandFixture fx = MakeBandFixture(n, 31 * n + 13);
    size_t lo_v = 0, hi_v = 0, lo_s = 0, hi_s = 0;
    CountBands(fx.values, fx.bins, fx.base, fx.lo_table, fx.hi_table, &lo_v,
               &hi_v);
    CountBandsScalar(fx.values, fx.bins, fx.base, fx.lo_table, fx.hi_table,
                     &lo_s, &hi_s);
    EXPECT_EQ(lo_v, lo_s) << "n=" << n;
    EXPECT_EQ(hi_v, hi_s) << "n=" << n;

    std::vector<int32_t> lo_idx_v, hi_idx_v, lo_idx_s, hi_idx_s;
    SelectBands(fx.values, fx.bins, fx.base, fx.lo_table, fx.hi_table,
                &lo_idx_v, &hi_idx_v);
    SelectBandsScalar(fx.values, fx.bins, fx.base, fx.lo_table, fx.hi_table,
                      &lo_idx_s, &hi_idx_s);
    EXPECT_EQ(lo_idx_v, lo_idx_s) << "n=" << n;
    EXPECT_EQ(hi_idx_v, hi_idx_s) << "n=" << n;
    // The counting pass must agree with the selection pass exactly —
    // the three-line task reserves from it.
    EXPECT_EQ(lo_idx_v.size(), lo_v);
    EXPECT_EQ(hi_idx_v.size(), hi_v);
  }
}

TEST(SimdParityTest, SelectBandsIndicesAscend) {
  const BandFixture fx = MakeBandFixture(513, 99);
  std::vector<int32_t> lo_idx, hi_idx;
  SelectBands(fx.values, fx.bins, fx.base, fx.lo_table, fx.hi_table, &lo_idx,
              &hi_idx);
  EXPECT_TRUE(std::is_sorted(lo_idx.begin(), lo_idx.end()));
  EXPECT_TRUE(std::is_sorted(hi_idx.begin(), hi_idx.end()));
}

TEST(SimdParityTest, AddResidualMatchesScalarBitwise) {
  for (const size_t n : kSizes) {
    for (const bool junk : {false, true}) {
      const std::vector<double> c = RandomSeries(n, 37 * n + 17, junk);
      const std::vector<double> t = RandomSeries(n, 41 * n + 19);
      const std::vector<double> beta = RandomSeries(n, 43 * n + 23);
      std::vector<double> acc_v = RandomSeries(n, 47 * n + 29);
      std::vector<double> acc_s = acc_v;
      AddResidual(acc_v, c, t, beta);
      AddResidualScalar(acc_s, c, t, beta);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_TRUE(ParityEqual(acc_v[i], acc_s[i]))
            << "n=" << n << " junk=" << junk << " i=" << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Byte-scan parity
// ---------------------------------------------------------------------------

std::string RandomCsvish(size_t n, uint64_t seed) {
  Rng rng(seed);
  static constexpr char kAlphabet[] = "0123456789.,\nab";
  std::string s(n, ' ');
  for (size_t i = 0; i < n; ++i) {
    s[i] = kAlphabet[rng.UniformInt(sizeof(kAlphabet) - 1)];
  }
  return s;
}

TEST(SimdParityTest, FindByteMatchesScalarAndStdFind) {
  for (const size_t n : kSizes) {
    const std::string s = RandomCsvish(n, 53 * n + 31);
    for (const size_t pos : {size_t{0}, size_t{1}, n / 2, n, n + 5}) {
      for (const char needle : {',', '\n', 'z'}) {
        const size_t got = FindByte(s, pos, needle);
        EXPECT_EQ(got, FindByteScalar(s, pos, needle))
            << "n=" << n << " pos=" << pos << " needle=" << needle;
        EXPECT_EQ(got, std::string_view(s).find(needle, pos));
      }
    }
  }
}

TEST(SimdParityTest, FindEitherByteMatchesScalar) {
  for (const size_t n : kSizes) {
    const std::string s = RandomCsvish(n, 59 * n + 37);
    for (const size_t pos : {size_t{0}, n / 3, n}) {
      EXPECT_EQ(FindEitherByte(s, pos, ',', '\n'),
                FindEitherByteScalar(s, pos, ',', '\n'))
          << "n=" << n << " pos=" << pos;
      EXPECT_EQ(FindEitherByte(s, pos, 'z', 'q'),
                FindEitherByteScalar(s, pos, 'z', 'q'))
          << "n=" << n << " pos=" << pos;
    }
  }
}

TEST(SimdParityTest, CountByteMatchesScalarAndStdCount) {
  for (const size_t n : kSizes) {
    const std::string s = RandomCsvish(n, 61 * n + 41);
    for (const char needle : {',', '\n', 'z'}) {
      const size_t got = CountByte(s, needle);
      EXPECT_EQ(got, CountByteScalar(s, needle));
      EXPECT_EQ(got, static_cast<size_t>(
                         std::count(s.begin(), s.end(), needle)));
    }
  }
}

// ---------------------------------------------------------------------------
// Forced-scalar dispatch: the public entry points must honour the level
// ---------------------------------------------------------------------------

TEST(SimdDispatchTest, ForcedScalarStillCorrect) {
  ScopedLevel scoped(Level::kScalar);
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(Dot(x, x), 55.0);
  double min = 0.0, max = 0.0;
  MinMax(x, &min, &max);
  EXPECT_EQ(min, 1.0);
  EXPECT_EQ(max, 5.0);
  EXPECT_EQ(FindByte("a,b,c", 0, ','), 1u);
  EXPECT_EQ(CountByte("a,b,c", ','), 2u);
}

}  // namespace
}  // namespace smartmeter::simd
