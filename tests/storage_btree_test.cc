#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/btree.h"

namespace smartmeter::storage {
namespace {

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_FALSE(tree.Contains(1));
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_TRUE(tree.Keys().empty());
}

TEST(BPlusTreeTest, InsertAndLookup) {
  BPlusTree tree;
  ASSERT_TRUE(tree.Insert(5, 50).ok());
  ASSERT_TRUE(tree.Insert(3, 30).ok());
  ASSERT_TRUE(tree.Insert(8, 80).ok());
  EXPECT_EQ(tree.size(), 3u);
  EXPECT_EQ(*tree.Lookup(5), 50u);
  EXPECT_EQ(*tree.Lookup(3), 30u);
  EXPECT_EQ(*tree.Lookup(8), 80u);
  EXPECT_EQ(tree.Lookup(4).status().code(), StatusCode::kNotFound);
}

TEST(BPlusTreeTest, RejectsDuplicates) {
  BPlusTree tree;
  ASSERT_TRUE(tree.Insert(1, 10).ok());
  EXPECT_EQ(tree.Insert(1, 20).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(*tree.Lookup(1), 10u);
}

TEST(BPlusTreeTest, SplitsGrowHeight) {
  BPlusTree tree;
  const int n = BPlusTree::kMaxKeys * BPlusTree::kMaxKeys;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(tree.Insert(i, static_cast<uint64_t>(i)).ok());
  }
  EXPECT_GE(tree.height(), 2);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(*tree.Lookup(i), static_cast<uint64_t>(i));
  }
}

TEST(BPlusTreeTest, KeysAreSortedAscending) {
  BPlusTree tree;
  Rng rng(3);
  std::set<int64_t> expected;
  for (int i = 0; i < 2000; ++i) {
    const int64_t key = static_cast<int64_t>(rng.UniformInt(100000));
    if (expected.insert(key).second) {
      ASSERT_TRUE(tree.Insert(key, static_cast<uint64_t>(key) * 2).ok());
    }
  }
  const std::vector<int64_t> keys = tree.Keys();
  ASSERT_EQ(keys.size(), expected.size());
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_TRUE(std::equal(keys.begin(), keys.end(), expected.begin()));
}

TEST(BPlusTreeTest, RangeScan) {
  BPlusTree tree;
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Insert(i * 2, static_cast<uint64_t>(i)).ok());
  }
  std::vector<int64_t> seen;
  tree.Scan(10, 20, [&seen](int64_t key, uint64_t) { seen.push_back(key); });
  const std::vector<int64_t> expected = {10, 12, 14, 16, 18, 20};
  EXPECT_EQ(seen, expected);
}

TEST(BPlusTreeTest, ScanEmptyRange) {
  BPlusTree tree;
  ASSERT_TRUE(tree.Insert(5, 1).ok());
  int visits = 0;
  tree.Scan(10, 4, [&visits](int64_t, uint64_t) { ++visits; });
  EXPECT_EQ(visits, 0);
  tree.Scan(6, 9, [&visits](int64_t, uint64_t) { ++visits; });
  EXPECT_EQ(visits, 0);
}

TEST(BPlusTreeTest, NegativeKeys) {
  BPlusTree tree;
  for (int64_t key : {-100, 0, 100, -50, 50}) {
    ASSERT_TRUE(tree.Insert(key, static_cast<uint64_t>(key + 1000)).ok());
  }
  EXPECT_EQ(*tree.Lookup(-100), 900u);
  const std::vector<int64_t> expected = {-100, -50, 0, 50, 100};
  EXPECT_EQ(tree.Keys(), expected);
}

TEST(BPlusTreeTest, MoveTransfersOwnership) {
  BPlusTree a;
  ASSERT_TRUE(a.Insert(1, 10).ok());
  BPlusTree b = std::move(a);
  EXPECT_EQ(*b.Lookup(1), 10u);
  EXPECT_EQ(b.size(), 1u);
}

// Property sweep: random insertion orders of various sizes keep all
// invariants and stay faithful to a reference std::set.
class BPlusTreePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BPlusTreePropertyTest, MatchesReferenceModel) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 97 + 13);
  const size_t n = 1 + rng.UniformInt(5000);
  BPlusTree tree;
  std::set<int64_t> model;
  for (size_t i = 0; i < n; ++i) {
    const int64_t key =
        static_cast<int64_t>(rng.UniformInt(10000)) - 5000;
    const bool fresh = model.insert(key).second;
    const Status st = tree.Insert(key, static_cast<uint64_t>(i));
    EXPECT_EQ(st.ok(), fresh);
  }
  ASSERT_TRUE(tree.CheckInvariants().ok()) << tree.CheckInvariants()
                                                  .ToString();
  EXPECT_EQ(tree.size(), model.size());
  for (int64_t key : model) {
    EXPECT_TRUE(tree.Contains(key));
  }
  // Spot-check some absent keys.
  for (int i = 0; i < 50; ++i) {
    const int64_t probe = static_cast<int64_t>(rng.UniformInt(20000)) + 6000;
    EXPECT_EQ(tree.Contains(probe), model.count(probe) > 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreePropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace smartmeter::storage
