#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <map>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "common/string_util.h"

#include "cluster/block_store.h"
#include "cluster/cost_model.h"
#include "cluster/dataflow.h"
#include "cluster/mapreduce.h"
#include "cluster/serde.h"
#include "cluster/task_scheduler.h"
#include "common/rng.h"

namespace smartmeter::cluster {
namespace {

namespace fs = std::filesystem;

class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("cluster_test_" + std::string(::testing::UnitTest::GetInstance()
                                              ->current_test_info()
                                              ->name()));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string WriteFile(const std::string& name,
                        const std::string& contents) {
    const std::string path = (dir_ / name).string();
    FILE* f = fopen(path.c_str(), "w");
    fwrite(contents.data(), 1, contents.size(), f);
    fclose(f);
    return path;
  }

  fs::path dir_;
};

// ---------------------------------------------------------------------------
// Serde
// ---------------------------------------------------------------------------

TEST(SerdeTest, Sizes) {
  EXPECT_EQ(ApproxByteSize(1.5), 8);
  EXPECT_EQ(ApproxByteSize(int64_t{1}), 8);
  EXPECT_EQ(ApproxByteSize(std::string("abcd")), 20);
  EXPECT_EQ(ApproxByteSize(std::vector<double>(10)), 16 + 80);
  EXPECT_EQ(ApproxByteSize(std::make_pair(int64_t{1}, 2.0)), 16);
  const std::vector<std::string> vs = {"ab", "c"};
  EXPECT_EQ(ApproxByteSize(vs), 16 + 18 + 17);
}

// ---------------------------------------------------------------------------
// Split reading (TextInputFormat semantics)
// ---------------------------------------------------------------------------

TEST_F(ClusterTest, SplitsCoverEveryLineExactlyOnce) {
  // Random lines, random block size: union of split reads == file lines.
  Rng rng(3);
  for (int trial = 0; trial < 8; ++trial) {
    std::string contents;
    std::vector<std::string> expected;
    const int n_lines = 1 + static_cast<int>(rng.UniformInt(100));
    for (int i = 0; i < n_lines; ++i) {
      std::string line = "line-" + std::to_string(trial) + "-" +
                         std::to_string(i) + "-" +
                         std::string(rng.UniformInt(30), 'x');
      expected.push_back(line);
      contents += line + "\n";
    }
    const std::string path =
        WriteFile("t" + std::to_string(trial) + ".txt", contents);
    const int64_t block = 1 + static_cast<int64_t>(rng.UniformInt(64));
    BlockStore store(4, block);
    ASSERT_TRUE(store.AddFile(path).ok());
    std::vector<std::string> collected;
    for (const InputSplit& split : store.SplittableSplits()) {
      auto lines = ReadSplitLines(split);
      ASSERT_TRUE(lines.ok());
      collected.insert(collected.end(), lines->begin(), lines->end());
    }
    // Order within a split is file order; splits are in offset order.
    EXPECT_EQ(collected, expected) << "block=" << block;
  }
}

TEST_F(ClusterTest, FileWithoutTrailingNewline) {
  const std::string path = WriteFile("nonl.txt", "a\nbb\nccc");
  BlockStore store(2, 4);
  ASSERT_TRUE(store.AddFile(path).ok());
  std::vector<std::string> collected;
  for (const InputSplit& split : store.SplittableSplits()) {
    auto lines = ReadSplitLines(split);
    ASSERT_TRUE(lines.ok());
    collected.insert(collected.end(), lines->begin(), lines->end());
  }
  const std::vector<std::string> expected = {"a", "bb", "ccc"};
  EXPECT_EQ(collected, expected);
}

TEST_F(ClusterTest, WholeFileSplitsOnePerFile) {
  WriteFile("a.txt", "1\n2\n");
  WriteFile("b.txt", "3\n");
  BlockStore store(4, 2);  // Tiny blocks, but whole-file ignores them.
  ASSERT_TRUE(store.AddFile((dir_ / "a.txt").string()).ok());
  ASSERT_TRUE(store.AddFile((dir_ / "b.txt").string()).ok());
  const auto splits = store.WholeFileSplits();
  ASSERT_EQ(splits.size(), 2u);
  auto lines_a = ReadSplitLines(splits[0]);
  ASSERT_TRUE(lines_a.ok());
  EXPECT_EQ(lines_a->size(), 2u);
  EXPECT_EQ(store.num_files(), 2u);
  EXPECT_EQ(store.total_bytes(), 6);
}

TEST_F(ClusterTest, SplittableSplitsRespectBlockSize) {
  std::string contents;
  for (int i = 0; i < 100; ++i) contents += "0123456789\n";  // 1100 bytes.
  const std::string path = WriteFile("big.txt", contents);
  BlockStore store(4, 256);
  ASSERT_TRUE(store.AddFile(path).ok());
  const auto splits = store.SplittableSplits();
  EXPECT_EQ(splits.size(), 5u);  // ceil(1100 / 256).
  EXPECT_TRUE(splits[0].opens_file);
  EXPECT_FALSE(splits[1].opens_file);
  std::set<int> nodes;
  for (const auto& s : splits) nodes.insert(s.home_node);
  EXPECT_GT(nodes.size(), 1u);  // Blocks spread over nodes.
}

TEST(BlockStoreTest, MissingFileFails) {
  BlockStore store(2, 64);
  EXPECT_EQ(store.AddFile("/nonexistent/x.csv").code(),
            StatusCode::kIOError);
}

// ---------------------------------------------------------------------------
// TaskWaveRunner
// ---------------------------------------------------------------------------

ClusterConfig TestConfig(int nodes = 2, int slots = 2) {
  ClusterConfig config;
  config.num_nodes = nodes;
  config.slots_per_node = slots;
  return config;
}

TEST(TaskWaveRunnerTest, SimulatedSecondsComposesCosts) {
  ClusterConfig config = TestConfig();
  config.cost.scan_seconds_per_mb = 1.0;
  config.cost.shuffle_seconds_per_mb = 2.0;
  config.cost.file_open_seconds = 0.5;
  TaskWaveRunner runner(config, /*task_startup_seconds=*/0.25);
  TaskStats stats;
  stats.input_bytes = 1 << 20;    // 1 MB -> 1 s.
  stats.shuffle_bytes = 2 << 20;  // 2 MB -> 4 s.
  stats.files_opened = 2;         // -> 1 s.
  stats.compute_seconds = 0.5;
  stats.fixed_seconds = 0.25;
  EXPECT_NEAR(runner.SimulatedSeconds(stats), 0.25 + 1.0 + 4.0 + 1.0 + 0.5 +
                                                  0.25,
              1e-12);
}

TEST(TaskWaveRunnerTest, MakespanListSchedules) {
  TaskWaveRunner runner(TestConfig(2, 1), 0.0);  // 2 slots.
  // Durations 3,3,3 on 2 slots -> 6; 5,1,1,1 -> 5 vs greedy 5? greedy:
  // slotA=5, slotB=1+1+1=3 -> makespan 5.
  EXPECT_DOUBLE_EQ(runner.Makespan({3, 3, 3}), 6.0);
  EXPECT_DOUBLE_EQ(runner.Makespan({5, 1, 1, 1}), 5.0);
  EXPECT_DOUBLE_EQ(runner.Makespan({}), 0.0);
}

TEST(TaskWaveRunnerTest, RunExecutesAllTasksAndMeasuresCompute) {
  TaskWaveRunner runner(TestConfig(4, 4), 0.0);
  std::atomic<int> executed{0};
  std::vector<TaskWaveRunner::TaskFn> tasks;
  for (int i = 0; i < 20; ++i) {
    tasks.push_back([&executed](TaskStats* stats) -> Status {
      executed.fetch_add(1);
      // Busy work so measured thread CPU time is nonzero.
      double acc = 0.0;
      for (int k = 0; k < 200000; ++k) acc += std::sqrt(k);
      stats->fixed_seconds = acc > 0 ? 0.0 : 1.0;
      return Status::OK();
    });
  }
  auto makespan = runner.Run(&tasks);
  ASSERT_TRUE(makespan.ok());
  EXPECT_EQ(executed.load(), 20);
  EXPECT_GT(*makespan, 0.0);
}

TEST(TaskWaveRunnerTest, FirstErrorPropagates) {
  TaskWaveRunner runner(TestConfig(), 0.0);
  std::vector<TaskWaveRunner::TaskFn> tasks;
  tasks.push_back([](TaskStats*) { return Status::OK(); });
  tasks.push_back(
      [](TaskStats*) { return Status::Corruption("bad split"); });
  auto result = runner.Run(&tasks);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Cost-model goldens: these pin the *default* calibrated constants. If a
// default changes, every simulated figure in the paper reproduction moves;
// update the constant deliberately and re-derive the literals here.
// ---------------------------------------------------------------------------

TEST(CostModelGolden, DefaultConstantsPinned) {
  const CostModel cost;
  EXPECT_DOUBLE_EQ(cost.hive_task_startup_seconds, 0.08);
  EXPECT_DOUBLE_EQ(cost.spark_task_startup_seconds, 0.01);
  EXPECT_DOUBLE_EQ(cost.hive_job_overhead_seconds, 1.2);
  EXPECT_DOUBLE_EQ(cost.spark_job_overhead_seconds, 0.3);
  EXPECT_DOUBLE_EQ(cost.scan_seconds_per_mb, 0.008);
  EXPECT_DOUBLE_EQ(cost.shuffle_seconds_per_mb, 0.035);
  EXPECT_DOUBLE_EQ(cost.broadcast_seconds_per_mb_per_node, 0.002);
  EXPECT_DOUBLE_EQ(cost.file_open_seconds, 0.004);
  EXPECT_DOUBLE_EQ(cost.spark_per_partition_driver_seconds, 0.0005);
  EXPECT_DOUBLE_EQ(cost.spark_wholefile_read_seconds_per_mb, 0.06);
  EXPECT_EQ(cost.spark_max_open_files, 100000);
  EXPECT_TRUE(cost.use_measured_compute);
  EXPECT_DOUBLE_EQ(cost.modeled_compute_seconds_per_mb, 0.02);
}

TEST(CostModelGolden, CanonicalTaskUnderDefaultConstants) {
  // A canonical task: 10 MB scanned, 4 MB shuffled, 25 files opened,
  // 0.5 s measured compute, 0.125 s fixed. Hand-computed against the
  // default constants:
  //   hive:  0.08 + 25*0.004 + 10*0.008 + 4*0.035 + 0.125 + 0.5 = 1.025
  //   spark: 0.01 + 0.1 + 0.08 + 0.14 + 0.125 + 0.5           = 0.955
  TaskStats stats;
  stats.input_bytes = 10 << 20;
  stats.shuffle_bytes = 4 << 20;
  stats.files_opened = 25;
  stats.compute_seconds = 0.5;
  stats.fixed_seconds = 0.125;
  ClusterConfig config;  // Default cost model.
  const CostModel defaults;
  TaskWaveRunner hive(config, defaults.hive_task_startup_seconds);
  TaskWaveRunner spark(config, defaults.spark_task_startup_seconds);
  EXPECT_NEAR(hive.SimulatedSeconds(stats), 1.025, 1e-12);
  EXPECT_NEAR(spark.SimulatedSeconds(stats), 0.955, 1e-12);
  // Deterministic-compute mode replaces the measured 0.5 s by
  // 10 MB * 0.02 = 0.2 s: hive drops to 0.725.
  config.cost.use_measured_compute = false;
  TaskWaveRunner modeled(config, defaults.hive_task_startup_seconds);
  EXPECT_NEAR(modeled.SimulatedSeconds(stats), 0.725, 1e-12);
  // And a canonical wave of six such tasks on 2x2 slots list-schedules
  // to two back-to-back rounds.
  TaskWaveRunner sched(TestConfig(2, 2), defaults.hive_task_startup_seconds);
  EXPECT_NEAR(sched.Makespan(std::vector<double>(6, 1.025)), 2.05, 1e-12);
}

TEST(TaskWaveRunnerTest, TopologyChargesPerLinkTransferTime) {
  ClusterConfig config = TestConfig(4, 1);
  config.topology.num_racks = 2;
  config.topology.intra_rack_mb_per_s = 100.0;
  config.topology.cross_rack_mb_per_s = 25.0;
  TaskWaveRunner runner(config, 0.0);
  // 4 nodes in 2 racks: half of a task's 8 MB shuffle stays on the
  // 100 MB/s in-rack link, half crosses the 25 MB/s core link:
  //   8*0.5/100 + 8*0.5/25 = 0.04 + 0.16 = 0.2 s.
  EXPECT_NEAR(runner.TopologyNetworkSeconds(8 << 20, 0), 0.2, 1e-12);
  // Same for a task homed in the other rack (symmetric split).
  EXPECT_NEAR(runner.TopologyNetworkSeconds(8 << 20, 2), 0.2, 1e-12);
  // Disabled topology (defaults) charges nothing.
  TaskWaveRunner flat(TestConfig(4, 1), 0.0);
  EXPECT_DOUBLE_EQ(flat.TopologyNetworkSeconds(8 << 20, 0), 0.0);
}

TEST(TaskWaveRunnerTest, FaultTimelineIsSeedDeterministic) {
  ClusterConfig config = TestConfig(2, 2);
  config.cost.use_measured_compute = false;
  config.faults.seed = 77;
  config.faults.task_failure_probability = 0.3;
  config.faults.retry_backoff_seconds = 0.25;
  config.faults.straggler_probability = 0.5;
  config.faults.speculative_execution = true;
  auto make_tasks = [] {
    std::vector<TaskWaveRunner::TaskFn> tasks;
    for (int i = 0; i < 16; ++i) {
      tasks.push_back([i](TaskStats* stats) {
        stats->fixed_seconds = 0.1 * (i + 1);
        return Status::OK();
      });
    }
    return tasks;
  };
  TaskWaveRunner runner(config, 0.0);
  WaveOptions options;
  options.wave_salt = 3;
  auto tasks1 = make_tasks();
  auto tasks2 = make_tasks();
  auto run1 = runner.RunWave(&tasks1, options);
  auto run2 = runner.RunWave(&tasks2, options);
  ASSERT_TRUE(run1.ok()) << run1.status().ToString();
  ASSERT_TRUE(run2.ok()) << run2.status().ToString();
  // Same seed + salt: bit-identical timeline and fault ledger.
  EXPECT_EQ(run1->makespan_seconds, run2->makespan_seconds);
  EXPECT_EQ(run1->faults.retries, run2->faults.retries);
  EXPECT_EQ(run1->faults.stragglers, run2->faults.stragglers);
  EXPECT_EQ(run1->faults.speculative_launched,
            run2->faults.speculative_launched);
  EXPECT_EQ(run1->faults.speculative_wins, run2->faults.speculative_wins);
  EXPECT_EQ(run1->faults.backoff_seconds, run2->faults.backoff_seconds);
  EXPECT_EQ(run1->faults.wasted_seconds, run2->faults.wasted_seconds);
  // A different wave salt draws a different timeline (with these rates,
  // 16 tasks all landing identically is practically impossible).
  WaveOptions other;
  other.wave_salt = 4;
  auto tasks3 = make_tasks();
  auto run3 = runner.RunWave(&tasks3, other);
  ASSERT_TRUE(run3.ok()) << run3.status().ToString();
  EXPECT_NE(run1->makespan_seconds, run3->makespan_seconds);
}

TEST(TaskWaveRunnerTest, NeutralFaultDefaultsAddNothing) {
  ClusterConfig config = TestConfig(2, 2);
  config.cost.use_measured_compute = false;
  std::vector<TaskWaveRunner::TaskFn> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back([](TaskStats* stats) {
      stats->fixed_seconds = 0.5;
      return Status::OK();
    });
  }
  TaskWaveRunner runner(config, 0.0);
  auto result = runner.RunWave(&tasks, WaveOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->makespan_seconds, 1.0);  // 8 x 0.5 on 4 slots.
  EXPECT_FALSE(result->faults.any());
}

TEST(TaskWaveRunnerTest, ExhaustedAttemptsAbortTheWave) {
  ClusterConfig config = TestConfig(2, 2);
  config.faults.seed = 5;
  config.faults.task_failure_probability = 1.0;
  config.faults.max_task_attempts = 3;
  std::atomic<int> executed{0};
  std::vector<TaskWaveRunner::TaskFn> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back([&executed](TaskStats* stats) {
      executed.fetch_add(1);
      stats->fixed_seconds = 0.1;
      return Status::OK();
    });
  }
  TaskWaveRunner runner(config, 0.0);
  auto result = runner.RunWave(&tasks, WaveOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  // The real work still ran exactly once per task; only the simulated
  // attempts burned out.
  EXPECT_EQ(executed.load(), 4);
}

TEST(TaskWaveRunnerTest, StopCheckAbortsMidRetryWithoutRerunningWork) {
  // A task stuck in a retry storm must honor the query's stop signal
  // between simulated attempts instead of simulating every retry.
  ClusterConfig config = TestConfig(1, 1);
  config.faults.seed = 11;
  config.faults.task_failure_probability = 1.0;
  config.faults.max_task_attempts = 1 << 30;  // Would "retry" forever.
  std::atomic<int> executed{0};
  std::atomic<int> polls{0};
  std::vector<TaskWaveRunner::TaskFn> tasks;
  tasks.push_back([&executed](TaskStats* stats) {
    executed.fetch_add(1);
    stats->fixed_seconds = 0.1;
    return Status::OK();
  });
  TaskWaveRunner runner(config, 0.0);
  WaveOptions options;
  options.stop_check = [&polls]() -> Status {
    if (polls.fetch_add(1) >= 3) {
      return Status::DeadlineExceeded("query deadline during backoff");
    }
    return Status::OK();
  };
  auto result = runner.RunWave(&tasks, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(executed.load(), 1);  // Real work never re-ran.
  EXPECT_EQ(polls.load(), 4);     // Aborted on the failing poll.
}

TEST(TaskWaveRunnerTest, MoreSlotsShrinkMakespan) {
  const std::vector<double> durations(64, 1.0);
  TaskWaveRunner small(TestConfig(2, 2), 0.0);   // 4 slots.
  TaskWaveRunner large(TestConfig(8, 2), 0.0);   // 16 slots.
  EXPECT_DOUBLE_EQ(small.Makespan(durations), 16.0);
  EXPECT_DOUBLE_EQ(large.Makespan(durations), 4.0);
}

// ---------------------------------------------------------------------------
// MapReduce
// ---------------------------------------------------------------------------

TEST_F(ClusterTest, WordCountStyleJob) {
  WriteFile("w1.txt", "a\nb\na\n");
  WriteFile("w2.txt", "b\na\n");
  BlockStore store(2, 4);
  ASSERT_TRUE(store.AddFile((dir_ / "w1.txt").string()).ok());
  ASSERT_TRUE(store.AddFile((dir_ / "w2.txt").string()).ok());

  mapreduce::JobOptions options;
  options.job_overhead_seconds = 0.0;
  options.task_startup_seconds = 0.0;
  options.num_reducers = 3;
  mapreduce::MapFn<std::string, int64_t> map =
      [](const InputSplit& split,
         mapreduce::Emitter<std::string, int64_t>* emitter) -> Status {
    SM_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                        ReadSplitLines(split));
    for (const std::string& line : lines) emitter->Emit(line, 1);
    return Status::OK();
  };
  mapreduce::ReduceFn<std::string, int64_t,
                      std::pair<std::string, int64_t>>
      reduce = [](const std::string& key, std::vector<int64_t>&& values,
                  std::vector<std::pair<std::string, int64_t>>* out)
      -> Status {
    out->emplace_back(key,
                      std::accumulate(values.begin(), values.end(),
                                      int64_t{0}));
    return Status::OK();
  };
  auto result =
      (mapreduce::RunMapReduce<std::string, int64_t,
                               std::pair<std::string, int64_t>>(
          store.SplittableSplits(), TestConfig(), options, map, reduce));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  std::map<std::string, int64_t> counts(result->outputs.begin(),
                                        result->outputs.end());
  EXPECT_EQ(counts["a"], 3);
  EXPECT_EQ(counts["b"], 2);
  EXPECT_GT(result->shuffle_bytes, 0);
  EXPECT_GT(result->input_bytes, 0);
}

TEST_F(ClusterTest, MapOnlyJobSkipsShuffle) {
  WriteFile("m.txt", "x\ny\n");
  BlockStore store(2, 64);
  ASSERT_TRUE(store.AddFile((dir_ / "m.txt").string()).ok());
  mapreduce::JobOptions options;
  options.job_overhead_seconds = 0.0;
  options.task_startup_seconds = 0.0;
  mapreduce::MapFn<std::string, int> map =
      [](const InputSplit& split,
         mapreduce::Emitter<std::string, int>* emitter) -> Status {
    SM_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                        ReadSplitLines(split));
    for (const std::string& line : lines) emitter->Emit(line, 7);
    return Status::OK();
  };
  auto result = (mapreduce::RunMapOnly<std::string, int>(
      store.SplittableSplits(), TestConfig(), options, map));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->outputs.size(), 2u);
  EXPECT_EQ(result->shuffle_bytes, 0);
}

TEST_F(ClusterTest, MapErrorAborts) {
  WriteFile("e.txt", "x\n");
  BlockStore store(1, 64);
  ASSERT_TRUE(store.AddFile((dir_ / "e.txt").string()).ok());
  mapreduce::MapFn<int64_t, int> map =
      [](const InputSplit&, mapreduce::Emitter<int64_t, int>*) -> Status {
    return Status::Corruption("boom");
  };
  auto result = (mapreduce::RunMapOnly<int64_t, int>(
      store.SplittableSplits(), TestConfig(), {}, map));
  EXPECT_FALSE(result.ok());
}

TEST_F(ClusterTest, HiveStyleOverheadsRaiseSimulatedTime) {
  WriteFile("o.txt", "x\n");
  BlockStore store(1, 64);
  ASSERT_TRUE(store.AddFile((dir_ / "o.txt").string()).ok());
  mapreduce::MapFn<int64_t, int> map =
      [](const InputSplit&, mapreduce::Emitter<int64_t, int>*) -> Status {
    return Status::OK();
  };
  mapreduce::JobOptions cheap, pricey;
  cheap.job_overhead_seconds = 0.0;
  cheap.task_startup_seconds = 0.0;
  pricey.job_overhead_seconds = 2.0;
  pricey.task_startup_seconds = 0.5;
  auto fast = (mapreduce::RunMapOnly<int64_t, int>(
      store.SplittableSplits(), TestConfig(), cheap, map));
  auto slow = (mapreduce::RunMapOnly<int64_t, int>(
      store.SplittableSplits(), TestConfig(), pricey, map));
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_GT(slow->simulated_seconds, fast->simulated_seconds + 2.0);
}

// ---------------------------------------------------------------------------
// Dataflow
// ---------------------------------------------------------------------------

TEST_F(ClusterTest, DataflowPipeline) {
  WriteFile("d.txt", "1\n2\n3\n4\n5\n");
  BlockStore store(2, 4);
  ASSERT_TRUE(store.AddFile((dir_ / "d.txt").string()).ok());
  dataflow::Context ctx(TestConfig());
  auto numbers = ctx.ReadText<int64_t>(
      store.SplittableSplits(),
      [](std::string_view line, std::vector<int64_t>* out) -> Status {
        SM_ASSIGN_OR_RETURN(int64_t v, ParseInt64(line));
        out->push_back(v);
        return Status::OK();
      });
  ASSERT_TRUE(numbers.ok());
  EXPECT_EQ(numbers->TotalSize(), 5u);

  auto doubled = (ctx.MapPartitions<int64_t, int64_t>(
      *numbers, [](const std::vector<int64_t>& in,
                   std::vector<int64_t>* out) -> Status {
        for (int64_t v : in) out->push_back(v * 2);
        return Status::OK();
      }));
  ASSERT_TRUE(doubled.ok());
  std::vector<int64_t> collected = ctx.Collect(std::move(*doubled));
  std::sort(collected.begin(), collected.end());
  const std::vector<int64_t> expected = {2, 4, 6, 8, 10};
  EXPECT_EQ(collected, expected);
  EXPECT_GT(ctx.simulated_seconds(), 0.0);
  EXPECT_GT(ctx.modeled_cached_bytes(), 0);
}

TEST_F(ClusterTest, DataflowGroupByGathersAllValues) {
  dataflow::Context ctx(TestConfig());
  std::vector<std::pair<int64_t, int64_t>> data;
  for (int64_t i = 0; i < 100; ++i) data.emplace_back(i % 7, i);
  auto part = ctx.Parallelize(std::move(data), 5);
  auto grouped =
      (ctx.GroupBy<std::pair<int64_t, int64_t>, int64_t, int64_t>(
          part,
          [](const std::pair<int64_t, int64_t>& kv) { return kv; }, 4));
  ASSERT_TRUE(grouped.ok());
  auto collected = ctx.Collect(std::move(*grouped));
  ASSERT_EQ(collected.size(), 7u);
  size_t total = 0;
  for (const auto& [key, values] : collected) {
    for (int64_t v : values) EXPECT_EQ(v % 7, key);
    total += values.size();
  }
  EXPECT_EQ(total, 100u);
}

TEST_F(ClusterTest, BroadcastChargesTime) {
  ClusterConfig config = TestConfig(16, 1);
  config.cost.broadcast_seconds_per_mb_per_node = 1.0;
  dataflow::Context ctx(config);
  const double before = ctx.simulated_seconds();
  auto handle = ctx.Broadcast(std::vector<double>(1 << 17));  // 1 MB.
  EXPECT_EQ(handle->size(), static_cast<size_t>(1 << 17));
  EXPECT_NEAR(ctx.simulated_seconds() - before, 16.0, 0.5);
}

TEST_F(ClusterTest, ParallelizeRoundRobins) {
  dataflow::Context ctx(TestConfig());
  std::vector<int> values(10);
  std::iota(values.begin(), values.end(), 0);
  auto part = ctx.Parallelize(std::move(values), 3);
  EXPECT_EQ(part.partitions.size(), 3u);
  EXPECT_EQ(part.TotalSize(), 10u);
  EXPECT_EQ(part.partitions[0].size(), 4u);
}

}  // namespace
}  // namespace smartmeter::cluster
