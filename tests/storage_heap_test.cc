#include <filesystem>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/heap_file.h"
#include "storage/row_store.h"

namespace smartmeter::storage {
namespace {

namespace fs = std::filesystem;

class HeapFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (fs::path(::testing::TempDir()) /
             ("heap_" + std::string(::testing::UnitTest::GetInstance()
                                        ->current_test_info()
                                        ->name()) +
              ".db"))
                .string();
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove(path_, ec);
    fs::remove(path_ + ".wal", ec);
  }

  std::string path_;
};

HeapFile::Tuple MakeTuple(int i) {
  return {100 + i % 7, i, 0.5 * i, -1.0 * i};
}

TEST_F(HeapFileTest, AppendReadRoundTrip) {
  HeapFile heap(path_);
  ASSERT_TRUE(heap.Create().ok());
  for (int i = 0; i < 10; ++i) {
    auto rid = heap.Append(MakeTuple(i));
    ASSERT_TRUE(rid.ok());
    EXPECT_EQ(*rid, static_cast<uint64_t>(i));
  }
  ASSERT_TRUE(heap.FinishLoad().ok());
  EXPECT_EQ(heap.num_rows(), 10u);
  for (int i = 0; i < 10; ++i) {
    auto tuple = heap.Read(static_cast<uint64_t>(i));
    ASSERT_TRUE(tuple.ok());
    EXPECT_EQ(tuple->household_id, 100 + i % 7);
    EXPECT_EQ(tuple->hour, i);
    EXPECT_DOUBLE_EQ(tuple->consumption, 0.5 * i);
    EXPECT_DOUBLE_EQ(tuple->temperature, -1.0 * i);
  }
}

TEST_F(HeapFileTest, SpansManyPages) {
  HeapFile heap(path_);
  ASSERT_TRUE(heap.Create().ok());
  const int n = static_cast<int>(HeapFile::TuplesPerPage()) * 5 + 17;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(heap.Append(MakeTuple(i)).ok());
  }
  ASSERT_TRUE(heap.FinishLoad().ok());
  EXPECT_EQ(heap.num_pages(), 6u);
  EXPECT_EQ(heap.num_rows(), static_cast<uint64_t>(n));
  // Random probes across page boundaries.
  Rng rng(3);
  for (int probe = 0; probe < 200; ++probe) {
    const int i = static_cast<int>(rng.UniformInt(static_cast<uint64_t>(n)));
    auto tuple = heap.Read(static_cast<uint64_t>(i));
    ASSERT_TRUE(tuple.ok());
    EXPECT_EQ(tuple->hour, i);
  }
}

TEST_F(HeapFileTest, ScanVisitsEveryTupleInOrder) {
  HeapFile heap(path_);
  ASSERT_TRUE(heap.Create().ok());
  const int n = static_cast<int>(HeapFile::TuplesPerPage()) * 2 + 3;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(heap.Append(MakeTuple(i)).ok());
  }
  ASSERT_TRUE(heap.FinishLoad().ok());
  int expected = 0;
  ASSERT_TRUE(heap.Scan([&expected](uint64_t rid, const HeapFile::Tuple& t) {
                    EXPECT_EQ(rid, static_cast<uint64_t>(expected));
                    EXPECT_EQ(t.hour, expected);
                    ++expected;
                  })
                  .ok());
  EXPECT_EQ(expected, n);
}

TEST_F(HeapFileTest, ReadOutOfRangeFails) {
  HeapFile heap(path_);
  ASSERT_TRUE(heap.Create().ok());
  ASSERT_TRUE(heap.Append(MakeTuple(0)).ok());
  ASSERT_TRUE(heap.FinishLoad().ok());
  EXPECT_EQ(heap.Read(1).status().code(), StatusCode::kOutOfRange);
}

TEST_F(HeapFileTest, ReadBeforeFinishFails) {
  HeapFile heap(path_);
  ASSERT_TRUE(heap.Create().ok());
  ASSERT_TRUE(heap.Append(MakeTuple(0)).ok());
  EXPECT_FALSE(heap.Read(0).ok());
}

TEST_F(HeapFileTest, CacheEvictsBeyondCapacity) {
  HeapFile heap(path_, /*write_ahead_log=*/false, /*cache_pages=*/2);
  ASSERT_TRUE(heap.Create().ok());
  const int per_page = static_cast<int>(HeapFile::TuplesPerPage());
  for (int i = 0; i < per_page * 6; ++i) {
    ASSERT_TRUE(heap.Append(MakeTuple(i)).ok());
  }
  ASSERT_TRUE(heap.FinishLoad().ok());
  // Stride through all pages twice: capacity 2 forces misses each round.
  for (int round = 0; round < 2; ++round) {
    for (int p = 0; p < 6; ++p) {
      ASSERT_TRUE(heap.Read(static_cast<uint64_t>(p * per_page)).ok());
    }
  }
  EXPECT_GE(heap.cache_misses(), 10);
  // Repeated access to one page hits.
  const int64_t misses = heap.cache_misses();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(heap.Read(0).ok());
  }
  EXPECT_LE(heap.cache_misses(), misses + 1);
  EXPECT_GT(heap.cache_hits(), 0);
}

TEST_F(HeapFileTest, WalWrittenWhenEnabled) {
  {
    HeapFile heap(path_, /*write_ahead_log=*/true);
    ASSERT_TRUE(heap.Create().ok());
    ASSERT_TRUE(heap.Append(MakeTuple(1)).ok());
    ASSERT_TRUE(heap.FinishLoad().ok());
  }
  EXPECT_TRUE(fs::exists(path_ + ".wal"));
  EXPECT_EQ(fs::file_size(path_ + ".wal"), sizeof(HeapFile::Tuple));
}

TEST_F(HeapFileTest, ReopenExistingFile) {
  const int n = static_cast<int>(HeapFile::TuplesPerPage()) + 5;
  {
    HeapFile heap(path_);
    ASSERT_TRUE(heap.Create().ok());
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(heap.Append(MakeTuple(i)).ok());
    }
    ASSERT_TRUE(heap.FinishLoad().ok());
  }
  HeapFile reopened(path_);
  ASSERT_TRUE(reopened.OpenForRead().ok());
  EXPECT_EQ(reopened.num_rows(), static_cast<uint64_t>(n));
  auto tuple = reopened.Read(static_cast<uint64_t>(n - 1));
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ(tuple->hour, n - 1);
}

TEST_F(HeapFileTest, ReopenForAppendContinuesTailPage) {
  HeapFile heap(path_);
  ASSERT_TRUE(heap.Create().ok());
  const int first_batch = static_cast<int>(HeapFile::TuplesPerPage()) + 7;
  for (int i = 0; i < first_batch; ++i) {
    ASSERT_TRUE(heap.Append(MakeTuple(i)).ok());
  }
  ASSERT_TRUE(heap.FinishLoad().ok());
  EXPECT_EQ(heap.num_pages(), 2u);

  ASSERT_TRUE(heap.ReopenForAppend().ok());
  for (int i = first_batch; i < first_batch + 20; ++i) {
    auto rid = heap.Append(MakeTuple(i));
    ASSERT_TRUE(rid.ok());
    EXPECT_EQ(*rid, static_cast<uint64_t>(i));  // Row ids continue.
  }
  ASSERT_TRUE(heap.FinishLoad().ok());
  EXPECT_EQ(heap.num_rows(), static_cast<uint64_t>(first_batch + 20));
  // Every tuple, old and new, reads back.
  for (int i = 0; i < first_batch + 20; ++i) {
    auto tuple = heap.Read(static_cast<uint64_t>(i));
    ASSERT_TRUE(tuple.ok()) << i;
    EXPECT_EQ(tuple->hour, i);
  }
}

TEST_F(HeapFileTest, ReopenForAppendOnFullTailPage) {
  HeapFile heap(path_);
  ASSERT_TRUE(heap.Create().ok());
  const int exact = static_cast<int>(HeapFile::TuplesPerPage()) * 2;
  for (int i = 0; i < exact; ++i) {
    ASSERT_TRUE(heap.Append(MakeTuple(i)).ok());
  }
  ASSERT_TRUE(heap.FinishLoad().ok());
  ASSERT_TRUE(heap.ReopenForAppend().ok());
  ASSERT_TRUE(heap.Append(MakeTuple(exact)).ok());
  ASSERT_TRUE(heap.FinishLoad().ok());
  EXPECT_EQ(heap.num_rows(), static_cast<uint64_t>(exact + 1));
  auto tuple = heap.Read(static_cast<uint64_t>(exact));
  ASSERT_TRUE(tuple.ok());
  EXPECT_EQ(tuple->hour, exact);
}

TEST_F(HeapFileTest, ReopenForAppendWhileLoadingFails) {
  HeapFile heap(path_);
  ASSERT_TRUE(heap.Create().ok());
  ASSERT_TRUE(heap.Append(MakeTuple(0)).ok());
  EXPECT_FALSE(heap.ReopenForAppend().ok());
}

// ---------------------------------------------------------------------------
// RowStore over the heap file
// ---------------------------------------------------------------------------

TEST(RowStoreHeapTest, AppendNewDayAfterReopen) {
  MeterDataset ds;
  ds.SetTemperature(std::vector<double>(48, 5.0));
  ConsumerSeries c;
  c.household_id = 9;
  c.consumption.assign(48, 1.0);
  ds.AddConsumer(c);
  RowStore store;
  ASSERT_TRUE(store.LoadFromDataset(ds, false).ok());
  ASSERT_TRUE(store.ReopenForAppend().ok());
  for (int h = 48; h < 72; ++h) {
    ASSERT_TRUE(store.Append({9, h, 2.0, 6.0}).ok());
  }
  ASSERT_TRUE(store.FinishLoad().ok());
  auto series = store.HouseholdConsumption(9);
  ASSERT_TRUE(series.ok());
  ASSERT_EQ(series->size(), 72u);
  EXPECT_DOUBLE_EQ((*series)[47], 1.0);
  EXPECT_DOUBLE_EQ((*series)[48], 2.0);
  EXPECT_DOUBLE_EQ((*series)[71], 2.0);
}

TEST(RowStoreHeapTest, ScanAllMatchesGathers) {
  MeterDataset ds;
  Rng rng(9);
  std::vector<double> temp(48);
  for (double& t : temp) t = rng.Uniform(-10, 25);
  ds.SetTemperature(std::move(temp));
  for (int i = 0; i < 5; ++i) {
    ConsumerSeries c;
    c.household_id = 200 + i;
    for (int h = 0; h < 48; ++h) {
      c.consumption.push_back(rng.Uniform(0, 3));
    }
    ds.AddConsumer(std::move(c));
  }
  RowStore store;
  ASSERT_TRUE(store.LoadFromDataset(ds, /*interleave=*/true).ok());
  auto scanned = store.ScanAll();
  ASSERT_TRUE(scanned.ok()) << scanned.status().ToString();
  ASSERT_EQ(scanned->num_consumers(), 5u);
  for (int i = 0; i < 5; ++i) {
    auto gathered = store.HouseholdConsumption(200 + i);
    ASSERT_TRUE(gathered.ok());
    EXPECT_EQ(scanned->consumer(static_cast<size_t>(i)).consumption,
              *gathered);
    EXPECT_EQ(*gathered, ds.consumer(static_cast<size_t>(i)).consumption);
  }
}

TEST(RowStoreHeapTest, AppendAfterFinishRejected) {
  RowStore store;
  ASSERT_TRUE(store.Append({1, 0, 1.0, 2.0}).ok());
  ASSERT_TRUE(store.FinishLoad().ok());
  EXPECT_FALSE(store.Append({1, 1, 1.0, 2.0}).ok());
}

TEST(RowStoreHeapTest, GatherBeforeFinishRejected) {
  RowStore store;
  ASSERT_TRUE(store.Append({1, 0, 1.0, 2.0}).ok());
  EXPECT_FALSE(store.HouseholdConsumption(1).ok());
}

TEST(RowStoreHeapTest, ScanAllEmptyFails) {
  RowStore store;
  ASSERT_TRUE(store.FinishLoad().ok());
  EXPECT_FALSE(store.ScanAll().ok());
}

}  // namespace
}  // namespace smartmeter::storage
