#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/similarity_task.h"
#include "datagen/seed_generator.h"
#include "stats/descriptive.h"
#include "stats/distance.h"
#include "stats/sax.h"

namespace smartmeter::stats {
namespace {

// ---------------------------------------------------------------------------
// PAA
// ---------------------------------------------------------------------------

TEST(PaaTest, AveragesEqualChunks) {
  const std::vector<double> v = {1, 1, 2, 2, 3, 3, 4, 4};
  auto paa = Paa(v, 4);
  ASSERT_TRUE(paa.ok());
  const std::vector<double> expected = {1, 2, 3, 4};
  EXPECT_EQ(*paa, expected);
}

TEST(PaaTest, RemainderFoldedIntoChunks) {
  const std::vector<double> v = {1, 2, 3, 4, 5, 6, 7};
  auto paa = Paa(v, 2);
  ASSERT_TRUE(paa.ok());
  // Chunks [0,3) and [3,7).
  EXPECT_DOUBLE_EQ((*paa)[0], 2.0);
  EXPECT_DOUBLE_EQ((*paa)[1], 5.5);
}

TEST(PaaTest, SegmentsEqualLengthIsIdentity) {
  const std::vector<double> v = {3, 1, 4, 1, 5};
  auto paa = Paa(v, 5);
  ASSERT_TRUE(paa.ok());
  EXPECT_EQ(*paa, v);
}

TEST(PaaTest, RejectsBadInput) {
  EXPECT_FALSE(Paa({}, 1).ok());
  const std::vector<double> v = {1, 2};
  EXPECT_FALSE(Paa(v, 0).ok());
  EXPECT_FALSE(Paa(v, 3).ok());
}

TEST(PaaTest, PreservesGlobalMean) {
  Rng rng(1);
  std::vector<double> v(100);
  for (double& x : v) x = rng.Gaussian(2.0, 1.0);
  auto paa = Paa(v, 10);
  ASSERT_TRUE(paa.ok());
  // Equal chunk sizes: PAA mean == series mean.
  EXPECT_NEAR(Mean(*paa), Mean(v), 1e-12);
}

// ---------------------------------------------------------------------------
// Z-normalization and breakpoints
// ---------------------------------------------------------------------------

TEST(ZNormalizeTest, ZeroMeanUnitVariance) {
  Rng rng(2);
  std::vector<double> v(500);
  for (double& x : v) x = rng.Gaussian(7.0, 3.0);
  const auto z = ZNormalize(v);
  EXPECT_NEAR(Mean(z), 0.0, 1e-10);
  EXPECT_NEAR(PopulationVariance(z), 1.0, 1e-10);
}

TEST(ZNormalizeTest, ConstantSeriesMapsToZeros) {
  const std::vector<double> v = {5, 5, 5};
  const auto z = ZNormalize(v);
  for (double x : z) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(SaxBreakpointsTest, EquiprobableCells) {
  auto bp = SaxBreakpoints(4);
  ASSERT_TRUE(bp.ok());
  ASSERT_EQ(bp->size(), 3u);
  // N(0,1) quartile boundaries: -0.6745, 0, 0.6745.
  EXPECT_NEAR((*bp)[0], -0.6745, 1e-3);
  EXPECT_NEAR((*bp)[1], 0.0, 1e-6);
  EXPECT_NEAR((*bp)[2], 0.6745, 1e-3);
  EXPECT_TRUE(std::is_sorted(bp->begin(), bp->end()));
}

TEST(SaxBreakpointsTest, RejectsBadAlphabet) {
  EXPECT_FALSE(SaxBreakpoints(1).ok());
  EXPECT_FALSE(SaxBreakpoints(17).ok());
}

// ---------------------------------------------------------------------------
// SAX words and MINDIST
// ---------------------------------------------------------------------------

TEST(SaxWordTest, SymbolsWithinAlphabet) {
  Rng rng(3);
  std::vector<double> v(256);
  for (double& x : v) x = rng.Gaussian(0, 1);
  auto word = ComputeSaxWord(v, 16, 8);
  ASSERT_TRUE(word.ok());
  ASSERT_EQ(word->symbols.size(), 16u);
  for (uint8_t s : word->symbols) EXPECT_LT(s, 8);
}

TEST(SaxWordTest, IdenticalSeriesHaveZeroMinDist) {
  Rng rng(4);
  std::vector<double> v(128);
  for (double& x : v) x = rng.Gaussian(0, 1);
  auto w1 = ComputeSaxWord(v, 16, 8);
  auto w2 = ComputeSaxWord(v, 16, 8);
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(w2.ok());
  auto dist = SaxMinDist(*w1, *w2, v.size());
  ASSERT_TRUE(dist.ok());
  EXPECT_DOUBLE_EQ(*dist, 0.0);
}

TEST(SaxWordTest, MinDistRejectsShapeMismatch) {
  const std::vector<double> v(64, 1.0);
  auto w1 = ComputeSaxWord(v, 8, 8);
  auto w2 = ComputeSaxWord(v, 16, 8);
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(w2.ok());
  EXPECT_FALSE(SaxMinDist(*w1, *w2, 64).ok());
}

// The defining property: MINDIST lower-bounds the true Euclidean
// distance between the z-normalized series.
class SaxLowerBoundTest : public ::testing::TestWithParam<int> {};

TEST_P(SaxLowerBoundTest, MinDistLowerBoundsEuclidean) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 131 + 7);
  const size_t n = 96 + rng.UniformInt(160);
  std::vector<double> a(n), b(n);
  // Mix of correlated and independent series across trials.
  const double blend = rng.NextDouble();
  for (size_t i = 0; i < n; ++i) {
    a[i] = rng.Gaussian(0, 1) + std::sin(static_cast<double>(i) * 0.2);
    b[i] = blend * a[i] + (1.0 - blend) * rng.Gaussian(0, 1);
  }
  const auto za = ZNormalize(a);
  const auto zb = ZNormalize(b);
  const double euclid = std::sqrt(SquaredEuclidean(za, zb));
  for (int segments : {8, 16, 32}) {
    for (int alphabet : {4, 8, 16}) {
      auto wa = ComputeSaxWord(a, segments, alphabet);
      auto wb = ComputeSaxWord(b, segments, alphabet);
      ASSERT_TRUE(wa.ok());
      ASSERT_TRUE(wb.ok());
      auto mindist = SaxMinDist(*wa, *wb, n);
      ASSERT_TRUE(mindist.ok());
      EXPECT_LE(*mindist, euclid + 1e-9)
          << "segments=" << segments << " alphabet=" << alphabet;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SaxLowerBoundTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace smartmeter::stats

namespace smartmeter::core {
namespace {

TEST(ApproxSimilarityTest, HighRecallOnRealisticData) {
  datagen::SeedGeneratorOptions options;
  options.num_households = 40;
  options.seed = 12;
  auto dataset = datagen::GenerateSeedDataset(options);
  ASSERT_TRUE(dataset.ok());
  std::vector<SeriesView> views;
  for (const auto& c : dataset->consumers()) {
    views.push_back({c.household_id, c.consumption});
  }
  SimilarityOptions exact_options;
  exact_options.k = 10;
  auto exact = ComputeSimilarityTopK(views, exact_options);
  ASSERT_TRUE(exact.ok());

  ApproxSimilarityOptions approx_options;
  approx_options.base.k = 10;
  auto approx = ComputeSimilarityTopKApprox(views, approx_options);
  ASSERT_TRUE(approx.ok());
  ASSERT_EQ(approx->size(), exact->size());

  // Recall of the approximate top-10 against the exact top-10.
  int hits = 0, total = 0;
  for (size_t q = 0; q < exact->size(); ++q) {
    for (const auto& truth : (*exact)[q].matches) {
      ++total;
      for (const auto& got : (*approx)[q].matches) {
        if (got.household_id == truth.household_id) {
          ++hits;
          break;
        }
      }
    }
  }
  EXPECT_GT(static_cast<double>(hits) / total, 0.7)
      << hits << "/" << total;
}

TEST(ApproxSimilarityTest, CandidateFactorOneStillReturnsK) {
  Rng rng(5);
  std::vector<std::vector<double>> data;
  std::vector<SeriesView> views;
  for (int i = 0; i < 30; ++i) {
    std::vector<double> v(96);
    for (double& x : v) x = rng.Gaussian(0, 1);
    data.push_back(std::move(v));
  }
  for (int i = 0; i < 30; ++i) views.push_back({i, data[static_cast<size_t>(i)]});
  ApproxSimilarityOptions options;
  options.base.k = 5;
  options.candidate_factor = 1;
  auto results = ComputeSimilarityTopKApprox(views, options);
  ASSERT_TRUE(results.ok());
  for (const auto& r : *results) {
    EXPECT_EQ(r.matches.size(), 5u);
  }
}

TEST(ApproxSimilarityTest, RejectsBadInput) {
  EXPECT_FALSE(ComputeSimilarityTopKApprox({}).ok());
  const std::vector<double> a(64, 1.0);
  std::vector<SeriesView> views = {{1, a}, {2, a}};
  ApproxSimilarityOptions options;
  options.base.k = 0;
  EXPECT_FALSE(ComputeSimilarityTopKApprox(views, options).ok());
}

}  // namespace
}  // namespace smartmeter::core
